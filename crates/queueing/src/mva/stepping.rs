//! The streaming face of the solver stack: population stepping, pause /
//! resume, snapshots, and stop conditions.
//!
//! Every closed-network solver in this workspace is a population recursion
//! at heart — the solution at population `n` is derived from `n − 1`
//! (Reiser & Lavenberg's Arrival Theorem), or at worst recomputed per
//! population from carried state. [`SolverIter`] exposes that structure:
//! one [`MvaPoint`] per call to [`SolverIter::step`], with the recursion
//! state carried inside the iterator so a paused sweep can resume where it
//! left off. [`SolverState`] is a cheap snapshot of that carried state
//! (marginal probabilities included), so capacity searches can fork a sweep
//! at an interesting population and explore from there without replaying
//! the prefix.
//!
//! [`StopCondition`] + [`run_until`] turn the iterator into an early-exit
//! engine: an SLA query ("first population whose response time exceeds
//! 2 s") walks only as far as the answer, instead of solving `1..=n_max`
//! and scanning afterwards.

use super::{MvaSolution, PopulationPoint};
use crate::QueueingError;
use mvasd_obsv as obsv;
use std::fmt;
use std::sync::Arc;

/// One population step's worth of output — alias for the batch API's
/// [`PopulationPoint`], so streamed and drained points are literally the
/// same type (and can be compared bit-for-bit).
pub type MvaPoint = PopulationPoint;

/// A resumable population-stepping solver.
///
/// Implementations carry the full recursion state (queue lengths, marginal
/// probabilities, partial convolutions) between calls, so:
///
/// * [`step`](Self::step) advances exactly one population and yields that
///   point;
/// * the iterator can be paused indefinitely and resumed — there is no
///   hidden batch buffer;
/// * [`snapshot`](Self::snapshot) captures the state cheaply (an `O(state)`
///   clone, never a re-solve), and the snapshot can be resumed any number
///   of times.
///
/// The contract every backend upholds (and the root `streaming` suite
/// enforces): draining a fresh iterator to `n_max` reproduces the batch
/// `solve(n_max)` output **bit-for-bit**, including across a
/// snapshot/restore mid-sweep.
pub trait SolverIter: Send {
    /// Station names, in network declaration order.
    fn station_names(&self) -> &[String];

    /// Station names as a shared handle, for assembling solutions without
    /// re-cloning every string. Backends that already keep their names in
    /// an `Arc<[String]>` override this with a reference-count bump; the
    /// default clones once.
    fn shared_names(&self) -> Arc<[String]> {
        self.station_names().to_vec().into()
    }

    /// The last population yielded (0 for a fresh iterator). The next
    /// [`step`](Self::step) yields `population() + 1`.
    fn population(&self) -> usize;

    /// Advances the recursion one population and yields that point.
    fn step(&mut self) -> Result<MvaPoint, QueueingError>;

    /// Clones the iterator, carried state and all, behind a fresh box.
    fn boxed_clone(&self) -> Box<dyn SolverIter>;

    /// Captures the current recursion state as a resumable [`SolverState`].
    fn snapshot(&self) -> SolverState {
        SolverState {
            iter: self.boxed_clone(),
        }
    }

    /// Drains the iterator up to population `n_max` (inclusive) and packs
    /// the yielded points into an [`MvaSolution`]. On a fresh iterator this
    /// is exactly the batch solve; on a warm iterator it returns only the
    /// remaining points (`population()+1 ..= n_max`), which may be empty.
    fn drain(&mut self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        let mut points = Vec::with_capacity(n_max.saturating_sub(self.population()));
        while self.population() < n_max {
            points.push(self.step()?);
        }
        Ok(MvaSolution {
            station_names: self.shared_names(),
            points,
        })
    }
}

/// A captured, resumable solver state — the generalization of the
/// queueing-layer `PopulationRecursion` to every backend.
///
/// A `SolverState` is a frozen [`SolverIter`]: it remembers the population
/// it was captured at and can mint any number of live iterators that
/// continue from that exact point ([`resume`](Self::resume)). Cloning a
/// state clones the carried recursion state, not the points already
/// yielded.
pub struct SolverState {
    iter: Box<dyn SolverIter>,
}

impl SolverState {
    /// Captures the state of a live iterator (equivalent to
    /// [`SolverIter::snapshot`]).
    pub fn capture(iter: &dyn SolverIter) -> Self {
        iter.snapshot()
    }

    /// The population the state was captured at.
    pub fn population(&self) -> usize {
        self.iter.population()
    }

    /// Station names, in network declaration order.
    pub fn station_names(&self) -> &[String] {
        self.iter.station_names()
    }

    /// Mints a live iterator that resumes from this state. The state
    /// itself is unchanged and can be resumed again.
    pub fn resume(&self) -> Box<dyn SolverIter> {
        self.iter.boxed_clone()
    }

    /// Consumes the state, yielding the frozen iterator without a clone.
    pub fn into_inner(self) -> Box<dyn SolverIter> {
        self.iter
    }
}

impl Clone for SolverState {
    fn clone(&self) -> Self {
        Self {
            iter: self.iter.boxed_clone(),
        }
    }
}

impl fmt::Debug for SolverState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverState")
            .field("population", &self.population())
            .field("stations", &self.station_names().len())
            .finish()
    }
}

/// Early-exit criteria for a streaming sweep, checked after every yielded
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Stop once the yielded population reaches `n` (inclusive).
    TargetPopulation(usize),
    /// Stop once any station's utilization reaches the threshold (a
    /// fraction of capacity, e.g. `0.95`) — the bottleneck has saturated
    /// and the throughput curve is flat from here on.
    BottleneckSaturation {
        /// Per-server utilization threshold in `(0, 1]`.
        utilization: f64,
    },
    /// Stop at the first population whose system response time (excluding
    /// think time) exceeds the ceiling — the point where the SLA breaks.
    SlaResponseTime {
        /// Response-time ceiling in seconds.
        max_response: f64,
    },
    /// Stop once the relative throughput gain of one population step drops
    /// to `epsilon` or below: `(X_n − X_{n−1}) / X_{n−1} <= epsilon`.
    /// Needs a previous point, so it never fires on the first step of a
    /// run.
    ThroughputPlateau {
        /// Relative per-step gain threshold, e.g. `1e-4`.
        epsilon: f64,
    },
}

impl StopCondition {
    /// Whether the condition is met at `point` (with `prev` the point
    /// yielded immediately before it in this run, if any).
    pub fn is_met(&self, point: &MvaPoint, prev: Option<&MvaPoint>) -> bool {
        match *self {
            StopCondition::TargetPopulation(n) => point.n >= n,
            StopCondition::BottleneckSaturation { utilization } => {
                point.stations.iter().any(|s| s.utilization >= utilization)
            }
            StopCondition::SlaResponseTime { max_response } => point.response > max_response,
            StopCondition::ThroughputPlateau { epsilon } => match prev {
                Some(p) if p.throughput > 0.0 => {
                    (point.throughput - p.throughput) / p.throughput <= epsilon
                }
                _ => false,
            },
        }
    }
}

/// Why a [`run_until`] sweep stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopReason {
    /// This condition fired (the first match in the conditions slice).
    Met(StopCondition),
    /// No condition fired before the population cap was reached.
    PopulationCap,
}

impl StopReason {
    /// The observability counter name bumped when this reason fires, so
    /// collectors can break down runs by what stopped them (e.g.
    /// `stop.sla_response_time`).
    pub fn metric_name(&self) -> &'static str {
        match self {
            StopReason::Met(StopCondition::TargetPopulation(_)) => "stop.target_population",
            StopReason::Met(StopCondition::BottleneckSaturation { .. }) => {
                "stop.bottleneck_saturation"
            }
            StopReason::Met(StopCondition::SlaResponseTime { .. }) => "stop.sla_response_time",
            StopReason::Met(StopCondition::ThroughputPlateau { .. }) => "stop.throughput_plateau",
            StopReason::PopulationCap => "stop.population_cap",
        }
    }
}

/// The output of a [`run_until`] sweep.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The points yielded by **this run** (a warm iterator's earlier points
    /// are not replayed), ascending in population. The last point is the
    /// one that triggered `reason`, unless the cap cut the run short.
    pub solution: MvaSolution,
    /// What stopped the sweep.
    pub reason: StopReason,
    /// Population steps actually executed — the early-exit currency: an
    /// SLA query that stops at `n = 180` of a 1500 cap did 180 steps, not
    /// 1500.
    pub steps: usize,
}

/// Steps `iter` until a stop condition fires or the population reaches
/// `n_cap`, whichever comes first.
///
/// Conditions are checked after every yielded point, in slice order; the
/// first match wins. An already-warm iterator contributes its current
/// population toward the cap but its previously yielded points are not
/// re-checked.
pub fn run_until(
    iter: &mut dyn SolverIter,
    conditions: &[StopCondition],
    n_cap: usize,
) -> Result<RunOutcome, QueueingError> {
    let _span = obsv::span_with("run_until", || format!("n_cap={n_cap}"));
    let mut points: Vec<MvaPoint> = Vec::new();
    let reason = loop {
        if iter.population() >= n_cap {
            break StopReason::PopulationCap;
        }
        let point = iter.step()?;
        let met = conditions
            .iter()
            .find(|c| c.is_met(&point, points.last()))
            .copied();
        points.push(point);
        if let Some(c) = met {
            break StopReason::Met(c);
        }
    };
    let steps = points.len();
    if obsv::enabled() {
        obsv::counter("run_until.calls", 1);
        obsv::counter("run_until.steps", steps as u64);
        // The early-exit currency: populations the cap allowed but the
        // stop condition made unnecessary.
        obsv::counter(
            "run_until.steps_saved",
            n_cap.saturating_sub(iter.population()) as u64,
        );
        obsv::counter(reason.metric_name(), 1);
    }
    Ok(RunOutcome {
        solution: MvaSolution {
            station_names: iter.shared_names(),
            points,
        },
        reason,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::StationPoint;

    /// A synthetic recursion with a saturating throughput curve:
    /// X(n) = min(n, 10), R(n) = n/X − 1 (think time 1.0).
    #[derive(Debug, Clone)]
    struct FakeIter {
        names: Vec<String>,
        n: usize,
    }

    impl FakeIter {
        fn new() -> Self {
            Self {
                names: vec!["s0".into()],
                n: 0,
            }
        }
    }

    impl SolverIter for FakeIter {
        fn station_names(&self) -> &[String] {
            &self.names
        }
        fn population(&self) -> usize {
            self.n
        }
        fn step(&mut self) -> Result<MvaPoint, QueueingError> {
            self.n += 1;
            let n = self.n;
            let x = (n as f64).min(10.0);
            let r = n as f64 / x - 1.0;
            Ok(MvaPoint {
                n,
                throughput: x,
                response: r,
                cycle_time: r + 1.0,
                stations: vec![StationPoint {
                    queue: n as f64 - x,
                    residence: r,
                    utilization: x / 10.0,
                }],
            })
        }
        fn boxed_clone(&self) -> Box<dyn SolverIter> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn drain_from_fresh_and_warm() {
        let mut it = FakeIter::new();
        let full = it.boxed_clone().drain(5).unwrap();
        assert_eq!(full.points.len(), 5);
        assert_eq!(full.points[4].n, 5);

        it.step().unwrap();
        it.step().unwrap();
        let rest = it.drain(5).unwrap();
        assert_eq!(rest.points.len(), 3);
        assert_eq!(rest.points[0].n, 3);
        // Draining below the current population yields nothing.
        assert!(it.drain(2).unwrap().points.is_empty());
    }

    #[test]
    fn snapshot_restores_exact_population() {
        let mut it = FakeIter::new();
        for _ in 0..4 {
            it.step().unwrap();
        }
        let snap = it.snapshot();
        assert_eq!(snap.population(), 4);
        it.step().unwrap();
        let mut resumed = snap.resume();
        assert_eq!(resumed.population(), 4);
        assert_eq!(resumed.step().unwrap().n, 5);
        // The state can be resumed again — it was not consumed.
        assert_eq!(snap.resume().step().unwrap().n, 5);
        let cloned = snap.clone();
        assert_eq!(cloned.population(), 4);
    }

    #[test]
    fn run_until_target_population() {
        let mut it = FakeIter::new();
        let out = run_until(&mut it, &[StopCondition::TargetPopulation(7)], 100).unwrap();
        assert_eq!(out.steps, 7);
        assert_eq!(
            out.reason,
            StopReason::Met(StopCondition::TargetPopulation(7))
        );
        assert_eq!(out.solution.last().n, 7);
    }

    #[test]
    fn run_until_sla_ceiling() {
        // R(n) = n/10 − 1 for n >= 10: first exceeds 0.55 at n = 16.
        let mut it = FakeIter::new();
        let out = run_until(
            &mut it,
            &[StopCondition::SlaResponseTime { max_response: 0.55 }],
            100,
        )
        .unwrap();
        assert_eq!(out.solution.last().n, 16);
        assert!(out.steps < 100);
    }

    #[test]
    fn run_until_saturation_and_plateau() {
        let mut it = FakeIter::new();
        let out = run_until(
            &mut it,
            &[StopCondition::BottleneckSaturation { utilization: 1.0 }],
            100,
        )
        .unwrap();
        assert_eq!(out.solution.last().n, 10); // X hits 10 = capacity at n=10

        let mut it = FakeIter::new();
        let out = run_until(
            &mut it,
            &[StopCondition::ThroughputPlateau { epsilon: 1e-9 }],
            100,
        )
        .unwrap();
        // X is flat from n=10 on, so the first zero-gain step is n=11.
        assert_eq!(out.solution.last().n, 11);
    }

    #[test]
    fn run_until_cap_and_warm_iterators() {
        let mut it = FakeIter::new();
        let out = run_until(&mut it, &[], 6).unwrap();
        assert_eq!(out.reason, StopReason::PopulationCap);
        assert_eq!(out.steps, 6);
        // Warm continuation: only the remaining steps run.
        let out2 = run_until(&mut it, &[], 9).unwrap();
        assert_eq!(out2.steps, 3);
        assert_eq!(out2.solution.points[0].n, 7);
        // Cap at/below the current population: nothing runs.
        let out3 = run_until(&mut it, &[], 9).unwrap();
        assert_eq!(out3.steps, 0);
        assert_eq!(out3.reason, StopReason::PopulationCap);
    }

    #[test]
    fn conditions_are_checked_in_order() {
        let mut it = FakeIter::new();
        let out = run_until(
            &mut it,
            &[
                StopCondition::TargetPopulation(3),
                StopCondition::TargetPopulation(1),
            ],
            100,
        )
        .unwrap();
        // Both fire at n >= 3 is false for the first at n=1; the second
        // fires immediately and is reported even though it is listed last.
        assert_eq!(
            out.reason,
            StopReason::Met(StopCondition::TargetPopulation(1))
        );
        assert_eq!(out.steps, 1);
    }
}
