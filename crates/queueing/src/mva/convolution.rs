//! Normalization-constant (convolution) evaluation of closed networks —
//! Buzen's algorithm in log-domain.
//!
//! The exact MVA population recursion for multi-server / load-dependent
//! stations closes the marginal distribution with `p(0) = 1 − Σ…`, which
//! cancels catastrophically near saturation; the recursion then amplifies
//! the round-off **exponentially** (a 16-core station — the paper's
//! hardware — produces percent-level errors and Bottleneck-Law violations
//! even in double-double arithmetic). The normalization-constant route has
//! no subtraction anywhere: every quantity is a ratio of sums of positive
//! terms, evaluated here with log-sum-exp so magnitudes like `Zⁿ/n!` never
//! overflow. This is the numerically definitive evaluation used by
//! [`super::multiserver_mva`] (paper Algorithm 2) and
//! [`super::load_dependent_mva`], and by the quasi-static phase of the
//! MVASD recursion.
//!
//! For a single-class network with stations `k` (demand `D_k`, rate
//! multiplier `α_k(j)`) and terminal think time `Z`:
//!
//! ```text
//! f_k(j) = D_k^j / ∏_{i=1}^{j} α_k(i)        (station factor)
//! f_Z(j) = Z^j / j!                          (think stage, infinite-server)
//! G      = f_1 ⊛ f_2 ⊛ … ⊛ f_K ⊛ f_Z         (convolution)
//! X(n)   = G(n−1) / G(n)
//! p_k(j|n) = f_k(j) · G₍₋ₖ₎(n−j) / G(n)
//! Q_k(n)  = Σ_j j · p_k(j|n)
//! ```
//!
//! `G₍₋ₖ₎` (the network without station `k`) is produced for every station
//! from prefix/suffix partial convolutions, keeping the whole solve at
//! `O(K · N²)` log-sum-exp operations.

use super::loaddep::RateFunction;
use super::{MvaSolution, PopulationPoint, StationPoint};
use crate::QueueingError;

/// One station of the convolution solver (internal normalized form).
#[derive(Debug, Clone)]
pub(crate) struct ConvStation {
    pub name: String,
    pub demand: f64,
    pub rate: RateFunction,
}

/// `ln Σ exp(aᵢ)` over the pairwise products of a convolution cell:
/// `c(n) = ln Σ_j exp(a(j) + b(n−j))`, skipping `−∞` terms.
fn log_conv_cell(a: &[f64], b: &[f64], n: usize) -> f64 {
    let lo = n.saturating_sub(b.len() - 1);
    let hi = n.min(a.len() - 1);
    let mut m = f64::NEG_INFINITY;
    for j in lo..=hi {
        let t = a[j] + b[n - j];
        if t > m {
            m = t;
        }
    }
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut acc = 0.0;
    for j in lo..=hi {
        let t = a[j] + b[n - j];
        if t > f64::NEG_INFINITY {
            acc += (t - m).exp();
        }
    }
    m + acc.ln()
}

/// Full log-domain convolution `c = a ⊛ b` truncated at `n_max`.
fn log_convolve(a: &[f64], b: &[f64], n_max: usize) -> Vec<f64> {
    (0..=n_max).map(|n| log_conv_cell(a, b, n)).collect()
}

/// `ln f_k(j)` for `j = 0..=n_max`.
fn log_factors(demand: f64, rate: &RateFunction, n_max: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_max + 1);
    out.push(0.0); // ln f(0) = ln 1
    if demand <= 0.0 {
        out.resize(n_max + 1, f64::NEG_INFINITY);
        return out;
    }
    let ld = demand.ln();
    let mut acc = 0.0;
    for j in 1..=n_max {
        acc += ld - rate.rate(j).ln();
        out.push(acc);
    }
    out
}

/// `ln f_Z(j) = j·ln Z − ln j!`.
fn log_think_factors(z: f64, n_max: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_max + 1);
    out.push(0.0);
    if z <= 0.0 {
        out.resize(n_max + 1, f64::NEG_INFINITY);
        return out;
    }
    let lz = z.ln();
    let mut acc = 0.0;
    for j in 1..=n_max {
        acc += lz - (j as f64).ln();
        out.push(acc);
    }
    out
}

/// Complete convolution solution of a closed network (full population
/// series).
#[derive(Debug, Clone)]
pub(crate) struct ConvSolution {
    /// Throughput per population `1..=N`.
    pub x: Vec<f64>,
    /// `queues[k][n-1]` = mean customers at station `k` with population `n`.
    pub queues: Vec<Vec<f64>>,
    /// `marginals[k][n-1][j]` = `p_k(j|n)` for `j = 0..limit_k` where
    /// `limit_k` is the station's marginal-tracking limit (server count for
    /// multi-server stations; empty otherwise). Only filled for stations
    /// where `marginal_limit > 0`.
    pub marginals: Vec<Vec<Vec<f64>>>,
}

/// Solves the network exactly for all populations `1..=n_max`.
///
/// `marginal_limits[k]` requests the first `limit` marginal probabilities
/// `p_k(0..limit−1 | n)` per population (0 = skip).
pub(crate) fn solve(
    stations: &[ConvStation],
    think_time: f64,
    n_max: usize,
    marginal_limits: &[usize],
) -> Result<ConvSolution, QueueingError> {
    if stations.is_empty() {
        return Err(QueueingError::EmptyNetwork);
    }
    if n_max == 0 {
        return Err(QueueingError::InvalidParameter {
            what: "population must be >= 1",
        });
    }
    let k_count = stations.len();

    // Factors: stations then the think stage.
    let mut factors: Vec<Vec<f64>> = stations
        .iter()
        .map(|s| log_factors(s.demand, &s.rate, n_max))
        .collect();
    factors.push(log_think_factors(think_time, n_max));
    let total = factors.len();

    // Prefix/suffix partial convolutions:
    //   prefix[i] = f_0 ⊛ … ⊛ f_{i−1}   (prefix[0] = identity)
    //   suffix[i] = f_i ⊛ … ⊛ f_{total−1} (suffix[total] = identity)
    let identity = {
        let mut v = vec![f64::NEG_INFINITY; n_max + 1];
        v[0] = 0.0;
        v
    };
    let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(total + 1);
    prefix.push(identity.clone());
    for f in factors.iter() {
        let last = prefix.last().expect("non-empty");
        prefix.push(log_convolve(last, f, n_max));
    }
    let mut suffix: Vec<Vec<f64>> = vec![identity.clone(); total + 1];
    for i in (0..total).rev() {
        suffix[i] = log_convolve(&factors[i], &suffix[i + 1], n_max);
    }
    let g = &prefix[total]; // full network G, log-domain

    for (n, &gv) in g.iter().enumerate() {
        if gv == f64::NEG_INFINITY && n > 0 && g[n - 1] != f64::NEG_INFINITY {
            return Err(QueueingError::InvalidParameter {
                what: "normalization constant vanished (all-zero demands?)",
            });
        }
    }

    let x: Vec<f64> = (1..=n_max).map(|n| (g[n - 1] - g[n]).exp()).collect();

    // Per-station queue lengths and (optionally) low-order marginals via
    // G₍₋ₖ₎ = prefix[k] ⊛ suffix[k+1].
    let mut queues = vec![vec![0.0f64; n_max]; k_count];
    let mut marginals: Vec<Vec<Vec<f64>>> = (0..k_count).map(|_| Vec::new()).collect();
    for k in 0..k_count {
        let want_marginals = marginal_limits.get(k).copied().unwrap_or(0);
        if matches!(stations[k].rate, RateFunction::Delay) && want_marginals == 0 {
            // Infinite-server: Q = X·D exactly (Little), skip the heavy path.
            for n in 1..=n_max {
                queues[k][n - 1] = x[n - 1] * stations[k].demand;
            }
            continue;
        }
        let g_minus = log_convolve(&prefix[k], &suffix[k + 1], n_max);
        let fk = &factors[k];
        if want_marginals > 0 {
            marginals[k] = Vec::with_capacity(n_max);
        }
        for n in 1..=n_max {
            // p_k(j|n) = exp(fk(j) + G₋ₖ(n−j) − G(n)).
            let mut q = 0.0;
            let mut snap = if want_marginals > 0 {
                vec![0.0f64; want_marginals]
            } else {
                Vec::new()
            };
            for j in 0..=n {
                let lp = fk[j] + g_minus[n - j] - g[n];
                if lp > -700.0 {
                    let p = lp.exp();
                    q += j as f64 * p;
                    if j < want_marginals {
                        snap[j] = p;
                    }
                }
            }
            queues[k][n - 1] = q;
            if want_marginals > 0 {
                marginals[k].push(snap);
            }
        }
    }

    Ok(ConvSolution {
        x,
        queues,
        marginals,
    })
}

/// Assembles an [`MvaSolution`] from a convolution solve.
pub(crate) fn to_mva_solution(
    stations: &[ConvStation],
    think_time: f64,
    sol: &ConvSolution,
) -> MvaSolution {
    let n_max = sol.x.len();
    let mut points = Vec::with_capacity(n_max);
    for n in 1..=n_max {
        let x = sol.x[n - 1];
        let station_points = stations
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let queue = sol.queues[k][n - 1];
                let utilization = match s.rate.max_rate() {
                    Some(mr) => x * s.demand / mr,
                    None => x * s.demand,
                };
                StationPoint {
                    queue,
                    residence: if x > 0.0 { queue / x } else { 0.0 },
                    utilization,
                }
            })
            .collect();
        let response: f64 =
            sol.queues.iter().map(|q| q[n - 1]).sum::<f64>() / if x > 0.0 { x } else { 1.0 };
        points.push(PopulationPoint {
            n,
            throughput: x,
            response,
            cycle_time: response + think_time,
            stations: station_points,
        });
    }
    MvaSolution {
        station_names: stations.iter().map(|s| s.name.clone()).collect(),
        points,
    }
}

/// Single-population solve result: `(X, per-station queues, per-station
/// marginals p(0..limit−1 | n))`.
pub(crate) type PointSolution = (f64, Vec<f64>, Vec<Vec<f64>>);

/// Solves only the top population `n`. Used by the quasi-static phase of
/// the MVASD recursion, where demands differ at every population.
pub(crate) fn solve_at(
    stations: &[ConvStation],
    think_time: f64,
    n: usize,
    marginal_limits: &[usize],
) -> Result<PointSolution, QueueingError> {
    if stations.is_empty() {
        return Err(QueueingError::EmptyNetwork);
    }
    if n == 0 {
        return Err(QueueingError::InvalidParameter {
            what: "population must be >= 1",
        });
    }
    let k_count = stations.len();
    let mut factors: Vec<Vec<f64>> = stations
        .iter()
        .map(|s| log_factors(s.demand, &s.rate, n))
        .collect();
    factors.push(log_think_factors(think_time, n));
    let total = factors.len();

    let identity = {
        let mut v = vec![f64::NEG_INFINITY; n + 1];
        v[0] = 0.0;
        v
    };
    let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(total + 1);
    prefix.push(identity.clone());
    for f in factors.iter() {
        let last = prefix.last().expect("non-empty");
        prefix.push(log_convolve(last, f, n));
    }
    let mut suffix: Vec<Vec<f64>> = vec![identity; total + 1];
    for i in (0..total).rev() {
        suffix[i] = log_convolve(&factors[i], &suffix[i + 1], n);
    }
    let g = &prefix[total];
    let x = (g[n - 1] - g[n]).exp();

    let mut queues = vec![0.0f64; k_count];
    let mut marginals: Vec<Vec<f64>> = Vec::with_capacity(k_count);
    for k in 0..k_count {
        let limit = marginal_limits.get(k).copied().unwrap_or(0);
        if matches!(stations[k].rate, RateFunction::Delay) && limit == 0 {
            queues[k] = x * stations[k].demand;
            marginals.push(Vec::new());
            continue;
        }
        let g_minus = log_convolve(&prefix[k], &suffix[k + 1], n);
        let fk = &factors[k];
        let mut q = 0.0;
        let mut snap = vec![0.0f64; limit];
        for j in 0..=n {
            let lp = fk[j] + g_minus[n - j] - g[n];
            if lp > -700.0 {
                let p = lp.exp();
                q += j as f64 * p;
                if j < limit {
                    snap[j] = p;
                }
            }
        }
        queues[k] = q;
        marginals.push(snap);
    }
    Ok((x, queues, marginals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn st(name: &str, demand: f64, rate: RateFunction) -> ConvStation {
        ConvStation {
            name: name.into(),
            demand,
            rate,
        }
    }

    #[test]
    fn machine_repair_exact_all_populations() {
        // Single c-server station + think time: closed form available.
        for (c, d, z) in [(1usize, 0.25f64, 1.0f64), (4, 0.25, 1.0), (16, 0.16, 1.0)] {
            let stations = vec![st("s", d, RateFunction::MultiServer(c))];
            let sol = solve(&stations, z, 400, &[c]).unwrap();
            for n in 1..=400usize {
                let (xe, qe) = mvasd_numerics::erlang::machine_repair(n, c, d, z).unwrap();
                let x = sol.x[n - 1];
                assert!(close(x, xe, 1e-9 * xe.max(1.0)), "c={c} n={n}: {x} vs {xe}");
                assert!(
                    close(sol.queues[0][n - 1], qe, 1e-7 * qe.max(1.0)),
                    "queue c={c} n={n}"
                );
            }
        }
    }

    #[test]
    fn population_conservation() {
        let stations = vec![
            st("cpu", 0.02, RateFunction::MultiServer(16)),
            st("disk", 0.002, RateFunction::SingleServer),
            st("lan", 0.001, RateFunction::Delay),
        ];
        let sol = solve(&stations, 1.0, 300, &[0, 0, 0]).unwrap();
        for n in 1..=300usize {
            let at_stations: f64 = (0..3).map(|k| sol.queues[k][n - 1]).sum();
            let thinking = sol.x[n - 1] * 1.0;
            assert!(
                close(at_stations + thinking, n as f64, 1e-6 * n as f64),
                "n={n}: {} + {}",
                at_stations,
                thinking
            );
        }
    }

    #[test]
    fn bottleneck_law_never_violated() {
        let stations = vec![
            st("cpu", 0.16, RateFunction::MultiServer(16)),
            st("disk", 0.004, RateFunction::SingleServer),
        ];
        let sol = solve(&stations, 1.0, 1500, &[0, 0]).unwrap();
        let cap = (16.0 / 0.16f64).min(1.0 / 0.004);
        let mut prev = 0.0;
        for (i, &x) in sol.x.iter().enumerate() {
            assert!(x <= cap + 1e-9, "n={}: {x} > {cap}", i + 1);
            assert!(x >= prev - 1e-9, "monotonicity at n={}", i + 1);
            prev = x;
        }
        assert!(sol.x[1499] > 0.999 * cap);
    }

    #[test]
    fn marginals_are_probabilities_and_match_busy_identity() {
        let c = 8;
        let stations = vec![st("cpu", 0.08, RateFunction::MultiServer(c))];
        let sol = solve(&stations, 0.5, 120, &[c]).unwrap();
        for n in 1..=120usize {
            let snap = &sol.marginals[0][n - 1];
            let mass: f64 = snap.iter().sum();
            assert!((0.0..=1.0 + 1e-9).contains(&mass));
            // E[min(Q,C)] = X·D (busy-server identity), where
            // E[min(Q,C)] = Σ_{j<C} j·p(j) + C·(1 − Σ_{j<C} p(j)).
            let e_busy: f64 = snap
                .iter()
                .enumerate()
                .map(|(j, p)| j as f64 * p)
                .sum::<f64>()
                + c as f64 * (1.0 - mass);
            let u = sol.x[n - 1] * 0.08;
            assert!(close(e_busy, u, 1e-8 * u.max(1e-12)), "n={n}");
        }
    }

    #[test]
    fn solve_at_matches_full_series() {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
        ];
        let full = solve(&stations, 1.0, 150, &[4, 1]).unwrap();
        for n in [1usize, 17, 80, 150] {
            let (x, q, m) = solve_at(&stations, 1.0, n, &[4, 1]).unwrap();
            assert!(close(x, full.x[n - 1], 1e-12 * x));
            assert!(close(q[0], full.queues[0][n - 1], 1e-9));
            assert!(close(q[1], full.queues[1][n - 1], 1e-9));
            for (j, mv) in m[0].iter().enumerate().take(4) {
                assert!(close(*mv, full.marginals[0][n - 1][j], 1e-10));
            }
        }
    }

    #[test]
    fn zero_think_time_supported() {
        let stations = vec![st("s", 0.1, RateFunction::SingleServer)];
        let sol = solve(&stations, 0.0, 50, &[0]).unwrap();
        // Batch network: X = 1/D for every n >= 1 (single station).
        for &x in &sol.x {
            assert!(close(x, 10.0, 1e-9));
        }
    }

    #[test]
    fn zero_demand_station_is_transparent() {
        let with = vec![
            st("s", 0.1, RateFunction::SingleServer),
            st("ghost", 0.0, RateFunction::SingleServer),
        ];
        let without = vec![st("s", 0.1, RateFunction::SingleServer)];
        let a = solve(&with, 1.0, 60, &[0, 0]).unwrap();
        let b = solve(&without, 1.0, 60, &[0]).unwrap();
        for n in 0..60 {
            assert!(close(a.x[n], b.x[n], 1e-12));
            assert!(close(a.queues[1][n], 0.0, 1e-12));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(solve(&[], 1.0, 10, &[]).is_err());
        let s = vec![st("s", 0.1, RateFunction::SingleServer)];
        assert!(solve(&s, 1.0, 0, &[0]).is_err());
        assert!(solve_at(&s, 1.0, 0, &[0]).is_err());
        assert!(solve_at(&[], 1.0, 5, &[]).is_err());
    }

    #[test]
    fn custom_rate_function_supported() {
        // A "2.5-way effective" station: rates 1, 1.8, 2.5 then flat.
        let stations = vec![st("s", 0.1, RateFunction::Custom(vec![1.0, 1.8, 2.5]))];
        let sol = solve(&stations, 0.2, 200, &[0]).unwrap();
        let cap = 2.5 / 0.1;
        let mut prev = 0.0;
        for &x in &sol.x {
            assert!(x <= cap + 1e-9);
            assert!(x >= prev - 1e-9);
            prev = x;
        }
        assert!(sol.x[199] > 0.99 * cap);
    }

    #[test]
    fn delay_dominated_network() {
        // Queueing station negligible next to a big delay stage: X ≈ n/(Z+Ddelay).
        let stations = vec![
            st("tiny", 1e-5, RateFunction::SingleServer),
            st("lan", 0.5, RateFunction::Delay),
        ];
        let sol = solve(&stations, 1.5, 50, &[0, 0]).unwrap();
        for n in 1..=50usize {
            let expect = n as f64 / 2.0; // ~ n/(1.5 + 0.5)
            let x = sol.x[n - 1];
            assert!((x - expect).abs() < 0.02 * expect, "n={n}: {x} vs {expect}");
        }
    }

    #[test]
    fn huge_population_no_overflow() {
        // Zⁿ/n! for n = 3000 spans hundreds of orders of magnitude; the
        // log-domain evaluation must sail through.
        let stations = vec![st("s", 0.01, RateFunction::SingleServer)];
        let sol = solve(&stations, 10.0, 3000, &[0]).unwrap();
        assert!(sol.x[2999].is_finite());
        assert!(sol.x[2999] <= 100.0 + 1e-6);
        assert!(sol.x[2999] > 99.0);
    }
}
