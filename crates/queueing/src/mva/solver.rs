//! The unified closed-network solver interface.
//!
//! Every analytic MVA variant in this crate — and, downstream, the MVASD
//! algorithms in `mvasd-core` and the discrete-event estimator in
//! `mvasd-testbed` — solves the same problem: given a closed network and a
//! maximum population `N`, produce throughput / cycle-time / queue-length
//! curves for populations `1..=N`. [`ClosedSolver`] captures exactly that,
//! so the paper's "MVA·i vs MVASD" comparisons (and any future backend)
//! are one-line swaps in `core::pipeline`, `core::accuracy`, and the bench
//! experiments.
//!
//! Since the streaming refactor the primitive operation is
//! [`ClosedSolver::start`]: mint a [`SolverIter`] that yields one
//! population per step. The batch [`ClosedSolver::solve`] is a provided
//! method that drains a fresh iterator, so both faces always agree —
//! bit-for-bit, as the root `streaming` suite asserts.
//!
//! The model is bound at construction (different solvers consume different
//! model descriptions: a static [`ClosedNetwork`], a demand profile, a
//! simulation network); only the target population is a solve-time input.

use super::convolution::{ConvIter, ConvStation};
use super::exact::ExactMvaIter;
use super::loaddep::validated_conv_stations;
use super::multiserver::conv_stations;
use super::schweitzer::SchweitzerIter;
use super::stepping::SolverIter;
use super::{LdStation, MvaSolution, RateFunction, SchweitzerOptions};
use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;

/// A solver for closed queueing networks.
///
/// Implementations expose the population recursion as a resumable
/// [`SolverIter`] via [`start`](Self::start); the batch
/// [`solve`](Self::solve) is a provided drain of a fresh iterator.
/// Approximate solvers (Schweitzer) and statistical estimators
/// (discrete-event simulation) implement the same contract; callers that
/// need exactness guarantees must choose an exact backend.
pub trait ClosedSolver {
    /// Short stable identifier, e.g. `"exact-mva"` — used in reports and
    /// comparison tables.
    fn name(&self) -> &str;

    /// Starts a fresh population-stepping iterator at population 0.
    /// Model validation happens here, so a started iterator only fails on
    /// numerical pathologies discovered mid-recursion.
    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError>;

    /// Solves for populations `1..=n_max` by draining a fresh iterator.
    /// `n_max = 0` yields an empty solution on a valid model.
    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        self.start()?.drain(n_max)
    }
}

impl<S: ClosedSolver + ?Sized> ClosedSolver for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        (**self).start()
    }

    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        (**self).solve(n_max)
    }
}

impl<S: ClosedSolver + ?Sized> ClosedSolver for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        (**self).start()
    }

    fn solve(&self, n_max: usize) -> Result<MvaSolution, QueueingError> {
        (**self).solve(n_max)
    }
}

/// Maps a static station description onto the load-dependent rate model.
fn rate_of(kind: &StationKind) -> RateFunction {
    match kind {
        StationKind::Queueing { servers: 1 } => RateFunction::SingleServer,
        StationKind::Queueing { servers } => RateFunction::MultiServer(*servers),
        StationKind::Delay => RateFunction::Delay,
        StationKind::LoadDependent { rates } => RateFunction::Custom(rates.clone()),
    }
}

/// Exact single-server MVA (paper Algorithm 1) over a static network.
///
/// Queueing stations are treated as single-server regardless of their
/// declared core count; use [`MultiserverMvaSolver`] when server counts
/// matter.
#[derive(Debug, Clone)]
pub struct ExactMvaSolver {
    net: ClosedNetwork,
}

impl ExactMvaSolver {
    /// Binds the solver to a network.
    pub fn new(net: ClosedNetwork) -> Self {
        Self { net }
    }
}

impl ClosedSolver for ExactMvaSolver {
    fn name(&self) -> &str {
        "exact-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(ExactMvaIter::new(self.net.clone())))
    }
}

/// Exact multi-server MVA (paper Algorithm 2) over a static network.
#[derive(Debug, Clone)]
pub struct MultiserverMvaSolver {
    net: ClosedNetwork,
}

impl MultiserverMvaSolver {
    /// Binds the solver to a network.
    pub fn new(net: ClosedNetwork) -> Self {
        Self { net }
    }
}

impl ClosedSolver for MultiserverMvaSolver {
    fn name(&self) -> &str {
        "multiserver-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        let conv = conv_stations(&self.net);
        let limits = vec![0usize; conv.len()];
        Ok(Box::new(ConvIter::new(
            conv,
            self.net.think_time(),
            limits,
        )?))
    }
}

/// Exact load-dependent MVA over arbitrary per-station rate functions.
#[derive(Debug, Clone)]
pub struct LoadDependentSolver {
    stations: Vec<LdStation>,
    think_time: f64,
}

impl LoadDependentSolver {
    /// Binds the solver to explicit load-dependent stations.
    pub fn new(stations: Vec<LdStation>, think_time: f64) -> Self {
        Self {
            stations,
            think_time,
        }
    }

    /// Derives the rate functions from a static network (single-server /
    /// multi-server / delay stations).
    pub fn from_network(net: &ClosedNetwork) -> Self {
        let stations = net
            .stations()
            .iter()
            .map(|s| LdStation::new(&s.name, s.demand(), rate_of(&s.kind)))
            .collect();
        Self {
            stations,
            think_time: net.think_time(),
        }
    }
}

impl ClosedSolver for LoadDependentSolver {
    fn name(&self) -> &str {
        "load-dependent-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        let conv = validated_conv_stations(&self.stations, self.think_time)?;
        let limits = vec![0usize; conv.len()];
        Ok(Box::new(ConvIter::new(conv, self.think_time, limits)?))
    }
}

/// Buzen's convolution (normalization-constant) algorithm in log-domain,
/// driven directly rather than through the load-dependent MVA wrapper.
#[derive(Debug, Clone)]
pub struct ConvolutionSolver {
    net: ClosedNetwork,
}

impl ConvolutionSolver {
    /// Binds the solver to a network.
    pub fn new(net: ClosedNetwork) -> Self {
        Self { net }
    }
}

impl ClosedSolver for ConvolutionSolver {
    fn name(&self) -> &str {
        "convolution"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        let stations: Vec<ConvStation> = self
            .net
            .stations()
            .iter()
            .map(|s| ConvStation {
                name: s.name.clone(),
                demand: s.demand(),
                rate: rate_of(&s.kind),
            })
            .collect();
        let limits = vec![0usize; stations.len()];
        Ok(Box::new(ConvIter::new(
            stations,
            self.net.think_time(),
            limits,
        )?))
    }
}

/// Schweitzer's approximate MVA (paper eq. 9, Seidmann transform for
/// multi-server stations). Approximate: expect a few percent deviation
/// from the exact solvers near the knee.
#[derive(Debug, Clone)]
pub struct SchweitzerSolver {
    net: ClosedNetwork,
    opts: SchweitzerOptions,
}

impl SchweitzerSolver {
    /// Binds the solver to a network with default fixed-point options.
    pub fn new(net: ClosedNetwork) -> Self {
        Self {
            net,
            opts: SchweitzerOptions::default(),
        }
    }

    /// Overrides the fixed-point options.
    pub fn with_options(mut self, opts: SchweitzerOptions) -> Self {
        self.opts = opts;
        self
    }
}

impl ClosedSolver for SchweitzerSolver {
    fn name(&self) -> &str {
        "schweitzer-mva"
    }

    fn start(&self) -> Result<Box<dyn SolverIter>, QueueingError> {
        Ok(Box::new(SchweitzerIter::new(self.net.clone(), self.opts)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::Station;

    fn single_server_net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.01),
                Station::queueing("disk", 1, 1.0, 0.016),
            ],
            0.5,
        )
        .unwrap()
    }

    fn solvers(net: &ClosedNetwork) -> Vec<Box<dyn ClosedSolver>> {
        vec![
            Box::new(ExactMvaSolver::new(net.clone())),
            Box::new(MultiserverMvaSolver::new(net.clone())),
            Box::new(LoadDependentSolver::from_network(net)),
            Box::new(ConvolutionSolver::new(net.clone())),
        ]
    }

    #[test]
    fn exact_family_agrees_through_the_trait() {
        let net = single_server_net();
        let reference = exact_mva(&net, 40).unwrap();
        for s in solvers(&net) {
            let sol = s.solve(40).unwrap();
            assert_eq!(sol.points.len(), 40, "{}", s.name());
            for (a, b) in sol.points.iter().zip(reference.points.iter()) {
                assert!(
                    (a.throughput - b.throughput).abs() < 1e-9,
                    "{} at n={}: {} vs {}",
                    s.name(),
                    a.n,
                    a.throughput,
                    b.throughput
                );
                assert!((a.cycle_time - b.cycle_time).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn streaming_face_matches_batch_for_every_backend() {
        let net = single_server_net();
        let mut all: Vec<Box<dyn ClosedSolver>> = solvers(&net);
        all.push(Box::new(SchweitzerSolver::new(net.clone())));
        for s in all {
            let batch = s.solve(30).unwrap();
            let streamed = s.start().unwrap().drain(30).unwrap();
            assert_eq!(batch, streamed, "{}", s.name());
            // Step-by-step walk hits the same floats too.
            let mut it = s.start().unwrap();
            for p in &batch.points {
                assert_eq!(&it.step().unwrap(), p, "{}", s.name());
            }
            assert_eq!(it.population(), 30);
        }
    }

    #[test]
    fn zero_population_is_an_empty_solution_for_every_backend() {
        let net = single_server_net();
        let mut all: Vec<Box<dyn ClosedSolver>> = solvers(&net);
        all.push(Box::new(SchweitzerSolver::new(net.clone())));
        for s in all {
            let sol = s.solve(0).unwrap();
            assert!(sol.points.is_empty(), "{}", s.name());
            assert_eq!(
                &sol.station_names[..],
                &["cpu".to_string(), "disk".to_string()][..],
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn schweitzer_close_but_approximate() {
        let net = single_server_net();
        let approx = SchweitzerSolver::new(net.clone()).solve(40).unwrap();
        let exact = exact_mva(&net, 40).unwrap();
        for (a, b) in approx.points.iter().zip(exact.points.iter()) {
            let rel = (a.throughput - b.throughput).abs() / b.throughput;
            assert!(rel < 0.06, "n={} rel={rel}", a.n);
        }
    }

    #[test]
    fn multiserver_network_through_trait() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu4", 4, 1.0, 0.02),
                Station::queueing("disk", 1, 1.0, 0.006),
            ],
            1.0,
        )
        .unwrap();
        let ms = MultiserverMvaSolver::new(net.clone()).solve(60).unwrap();
        let ld = LoadDependentSolver::from_network(&net).solve(60).unwrap();
        let cv = ConvolutionSolver::new(net).solve(60).unwrap();
        for n in 1..=60 {
            let a = ms.at(n).unwrap().throughput;
            let b = ld.at(n).unwrap().throughput;
            let c = cv.at(n).unwrap().throughput;
            assert!((a - b).abs() < 1e-8, "ms vs ld at {n}");
            assert!((b - c).abs() < 1e-12, "ld vs conv at {n}");
        }
    }

    #[test]
    fn names_are_stable() {
        let net = single_server_net();
        assert_eq!(ExactMvaSolver::new(net.clone()).name(), "exact-mva");
        assert_eq!(
            MultiserverMvaSolver::new(net.clone()).name(),
            "multiserver-mva"
        );
        assert_eq!(
            LoadDependentSolver::from_network(&net).name(),
            "load-dependent-mva"
        );
        assert_eq!(ConvolutionSolver::new(net.clone()).name(), "convolution");
        assert_eq!(SchweitzerSolver::new(net).name(), "schweitzer-mva");
    }

    #[test]
    fn invalid_models_fail_at_start() {
        let bad = LoadDependentSolver::new(
            vec![LdStation::new("s", 0.1, RateFunction::MultiServer(0))],
            1.0,
        );
        assert!(bad.start().is_err());
        assert!(bad.solve(10).is_err());
        let bad_opts = SchweitzerSolver::new(single_server_net()).with_options(SchweitzerOptions {
            tolerance: 0.0,
            max_iterations: 10,
        });
        assert!(bad_opts.start().is_err());
    }

    #[test]
    fn trait_objects_and_references_compose() {
        let net = single_server_net();
        let exact = ExactMvaSolver::new(net);
        let by_ref: &dyn ClosedSolver = &exact;
        let boxed: Box<dyn ClosedSolver> = Box::new(exact.clone());
        assert_eq!(by_ref.name(), boxed.name());
        let a = by_ref.solve(5).unwrap();
        let b = boxed.solve(5).unwrap();
        assert_eq!(a, b);
        // Snapshots resume mid-population through the trait object too.
        let mut it = by_ref.start().unwrap();
        it.step().unwrap();
        it.step().unwrap();
        let snap = it.snapshot();
        assert_eq!(snap.resume().drain(5).unwrap().points, a.points[2..]);
    }
}
