//! Batched log-sum-exp convolution kernel: the O(n) inner loop of Buzen's
//! algorithm, restructured for autovectorization and `exp`-call pruning.
//!
//! One convolution cell is `c(n) = ln Σ_j exp(a(j) + b(n−j))`. The
//! historical implementation ([`scalar_reference`], kept verbatim as the
//! equivalence oracle) fuses max-tracking and accumulation into a single
//! serial pass whose running-maximum rescale makes every iteration depend
//! on the last — LLVM cannot vectorize it, and it calls libm `exp` once
//! per element no matter how negligible the term.
//!
//! [`conv_cell`] splits the cell into three data-parallel passes over a
//! scratch buffer ([`CellScratch`]):
//!
//! 1. **Add** — copy `b(0..=n)` reversed into `brev` so the sum is a pure
//!    elementwise `t[j] = a[j] + brev[j]` sweep (unit stride, FMA-able).
//! 2. **Max** — per-[`CHUNK`] block maxima with a 4-lane manually unrolled
//!    reduction (stable Rust, no `std::simd`, no `unsafe`), folded into
//!    the global maximum `m`. `−∞` needs no per-element branch: it simply
//!    never wins a `max`. NaN *would* be silently dropped by `f64::max`,
//!    so each block also keeps a running sum — any NaN summand poisons it
//!    — and a NaN block sum marks the block maximum NaN (see pass 3).
//! 3. **Exp + accumulate** — `acc += Σ exp(t[j] − m)`, 4-lane unrolled,
//!    visiting **only** blocks whose maximum reaches `m + `[`CUT`]. A
//!    skipped block contributes at most `CHUNK · e^CUT ≈ 1.8e-19` to an
//!    accumulator that is ≥ 1 (the maximum term itself is `e^0`), i.e.
//!    under `0.002 ulp` per block and under `eps/2` total for any `n ≤
//!    100 000 — far beyond any population this suite sweeps. Because
//!    log-domain convolution columns of queueing networks are sharply
//!    peaked (log-concave in `j`), most blocks prune, and with them the
//!    libm `exp` calls that dominate the scalar cell's runtime. A NaN
//!    block maximum fails `max < cut` and is therefore *never* pruned, so
//!    NaN poison always reaches the accumulator. `exp(−∞ − m) = 0`, so
//!    `−∞` entries inside kept blocks need no branch either.
//!
//! ## Equivalence contract (property-tested against [`scalar_reference`])
//!
//! * All-`−∞` rows: bit-exact (`−∞`), and NaN anywhere yields NaN.
//! * Adversarial dynamic ranges (operands spread over hundreds of nats,
//!   `−∞` holes): within **2 ulp** at the dominant-term scale
//!   `max(|result|, |m|, 1)` — both algorithms are then dominated by a few
//!   terms and compute them identically.
//! * Flat rows (thousands of same-magnitude terms): within
//!   `(2 + √len) ulp` at the same scale. The allowance is the *oracle's*
//!   own summation noise: two correct reductions of `len` rounded terms
//!   legitimately drift apart by `O(√len · eps)`, and no fixed small bound
//!   can separate them. The kernel's 4-lane partial sums make it the more
//!   accurate side of that comparison.
//!
//! The dominant-term scale (rather than `|result|` alone) is deliberate:
//! when `m` and `ln acc` cancel, neither algorithm resolves the result
//! below the rounding of `m` itself, so measuring ulps at `|result|`
//! would demand precision the inputs do not carry.

use mvasd_obsv as obsv;

/// Pruning threshold in nats below the global maximum: blocks whose
/// maximum is under `m + CUT` are skipped in the exp pass. `e^{−46} ≈
/// 1.05e-20`; see the module docs for the resulting error budget.
pub const CUT: f64 = -46.0;

/// Elements per pruning block in passes 2 and 3. A multiple of the 4-lane
/// unroll; small enough that peaked columns prune most blocks, large
/// enough that the per-block bookkeeping stays negligible.
pub const CHUNK: usize = 16;

/// `ceil(n / d)` without `usize::div_ceil`, which postdates the workspace
/// MSRV (1.70).
#[inline]
const fn ceil_div(n: usize, d: usize) -> usize {
    (n + d - 1) / d
}

/// Reusable scratch for [`conv_cell`]: the reversed-`b` copy, the
/// elementwise sums, and the per-block maxima. Growth happens only in
/// [`ensure`](Self::ensure); a warm scratch allocates nothing per cell.
/// Cloning snapshots capacity (the contents are per-call transients).
#[derive(Debug, Clone, Default)]
pub struct CellScratch {
    brev: Vec<f64>,
    t: Vec<f64>,
    block_max: Vec<f64>,
}

impl CellScratch {
    /// An empty scratch; it grows on first use (or [`ensure`](Self::ensure)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffers for cells up to `len` elements, so later
    /// [`conv_cell`] calls up to that size allocate nothing.
    pub fn ensure(&mut self, len: usize) {
        if self.t.len() < len {
            self.brev.resize(len, 0.0);
            self.t.resize(len, 0.0);
            self.block_max.resize(ceil_div(len, CHUNK), 0.0);
        }
    }
}

/// One log-domain convolution cell
/// `c(n) = ln Σ_{j=0..=n} exp(a(j) + b(n−j))`, batched: reversed-stride
/// add, blocked 4-lane max, pruned 4-lane exp-accumulate (see the module
/// docs). `−∞`-safe, NaN-poison-preserving, and equivalent to
/// [`scalar_reference`] under the documented ulp contract.
// lint: no-alloc
pub fn conv_cell(a: &[f64], b: &[f64], n: usize, scratch: &mut CellScratch) -> f64 {
    let len = n + 1;
    scratch.ensure(len);
    let _span = if obsv::enabled() {
        Some(obsv::span("kernel.lse.batch"))
    } else {
        None
    };

    // Pass 1: t[j] = a[j] + b[n−j] as a unit-stride sweep over a reversed
    // copy of b.
    let brev = &mut scratch.brev[..len];
    brev.copy_from_slice(&b[..len]);
    brev.reverse();
    let t = &mut scratch.t[..len];
    for ((dst, &x), &y) in t.iter_mut().zip(&a[..len]).zip(brev.iter()) {
        *dst = x + y;
    }

    // Pass 2: blocked maxima. `f64::max` ignores NaN, so the block sum —
    // which any NaN summand poisons — stands in as the detector: a NaN
    // block records a NaN maximum.
    let t = &scratch.t[..len];
    let blocks = ceil_div(len, CHUNK);
    let block_max = &mut scratch.block_max[..blocks];
    for (bm, block) in block_max.iter_mut().zip(t.chunks(CHUNK)) {
        let (mut m0, mut m1, mut m2, mut m3) = (
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        let mut s = 0.0;
        let mut quads = block.chunks_exact(4);
        // lint: log-domain-ok four-lane pruned accumulation, re-entered via acc.ln() below
        for quad in quads.by_ref() {
            if let &[x0, x1, x2, x3] = quad {
                m0 = m0.max(x0);
                m1 = m1.max(x1);
                m2 = m2.max(x2);
                m3 = m3.max(x3);
                s += (x0 + x1) + (x2 + x3);
            }
        }
        for &x in quads.remainder() {
            m0 = m0.max(x);
            s += x;
        }
        let mx = m0.max(m1).max(m2).max(m3);
        *bm = if s.is_nan() { s } else { mx };
    }
    let mut m = f64::NEG_INFINITY;
    let mut poisoned = false;
    for &bm in block_max.iter() {
        if bm.is_nan() {
            poisoned = true;
        } else {
            m = m.max(bm);
        }
    }
    if m == f64::NEG_INFINITY {
        // All-−∞ row (exact), unless a NaN block was hiding in it.
        return if poisoned {
            f64::NAN
        } else {
            f64::NEG_INFINITY
        };
    }

    // Pass 3: accumulate exp(t − m) over blocks that can matter. The
    // comparison is written as `bm < cut → skip` so a NaN block maximum
    // (which fails every `<`) is always visited and poisons `acc`.
    let cut = m + CUT;
    let mut acc = 0.0;
    for (&bm, block) in block_max.iter().zip(t.chunks(CHUNK)) {
        if bm < cut {
            continue;
        }
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        let mut quads = block.chunks_exact(4);
        // lint: log-domain-ok four-lane pruned accumulation, re-entered via acc.ln() below
        for quad in quads.by_ref() {
            if let &[x0, x1, x2, x3] = quad {
                a0 += (x0 - m).exp();
                a1 += (x1 - m).exp();
                a2 += (x2 - m).exp();
                a3 += (x3 - m).exp();
            }
        }
        let mut rest = 0.0;
        // lint: log-domain-ok pruned remainder lane, re-entered via acc.ln() below
        for &x in quads.remainder() {
            rest += (x - m).exp();
        }
        acc += ((a0 + a1) + (a2 + a3)) + rest;
    }
    m + acc.ln()
}

/// The original single-pass running-maximum cell, kept verbatim as the
/// equivalence oracle for [`conv_cell`] (and as the bench baseline): a
/// running maximum rescales the partial sum whenever a new peak appears,
/// so each operand pair is read exactly once — and every finite element
/// costs one serial libm `exp` call.
// lint: no-alloc
#[inline]
pub fn scalar_reference(a: &[f64], b: &[f64], n: usize) -> f64 {
    let mut m = f64::NEG_INFINITY;
    let mut acc = 0.0;
    for j in 0..=n {
        let t = a[j] + b[n - j];
        if t == f64::NEG_INFINITY {
            continue;
        }
        if t <= m {
            acc += (t - m).exp();
        } else {
            // First finite term lands here: 0 · e^{−∞} + 1 = 1.
            acc = acc * (m - t).exp() + 1.0;
            m = t;
        }
    }
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + acc.ln()
}

/// Log-sum-exp of two log-domain values, `−∞`-safe and subtraction-free
/// in the linear domain: `hi + ln(1 + exp(lo − hi))`. The `−∞` handling
/// is folded into the `(hi, lo)` select: after it, `hi = −∞` means both
/// operands are `−∞` (result `a + b = −∞`, or NaN if one was NaN —
/// poison preserved), and `lo = −∞` alone telescopes to `hi`.
// lint: no-alloc
#[inline]
pub fn lse2(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return a + b;
    }
    if lo == f64::NEG_INFINITY {
        return hi;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// The multiclass slab fill for one class: residence times
/// `res[k] = dq[k] · (1 + q_prev[k]) + dd[k]` (arrival theorem over the
/// neighbor point's queues), returning their sequential sum. Extracted
/// from the multiclass workspace token-for-token — operation order and
/// the left-to-right sum are bit-identical to the scratch oracle's, which
/// the multiclass bitwise suites lock in place.
// lint: no-alloc
#[inline]
pub fn residence_fill(dq: &[f64], dd: &[f64], q_prev: &[f64], res: &mut [f64]) -> f64 {
    let mut r_c = 0.0;
    for (((r, &dqk), &ddk), &qk) in res.iter_mut().zip(dq).zip(dd).zip(q_prev) {
        let v = dqk * (1.0 + qk) + ddk;
        *r = v;
        r_c += v;
    }
    r_c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasd_numerics::propcheck::{check, Config, Gen};

    /// The dominant-term scale the equivalence contract measures ulps at.
    fn dominant_scale(result: f64, m: f64) -> f64 {
        result.abs().max(m.abs()).max(1.0)
    }

    /// Exact max of the cell's summands, computed with the same pairwise
    /// adds the kernel uses.
    fn true_max(a: &[f64], b: &[f64], n: usize) -> f64 {
        let mut m = f64::NEG_INFINITY;
        for j in 0..=n {
            let t = a[j] + b[n - j];
            if !t.is_nan() {
                m = m.max(t);
            }
        }
        m
    }

    fn assert_within_ulps(a: &[f64], b: &[f64], n: usize, ulps: f64, label: &str) {
        let mut scratch = CellScratch::new();
        let batched = conv_cell(a, b, n, &mut scratch);
        let scalar = scalar_reference(a, b, n);
        if scalar == f64::NEG_INFINITY {
            assert_eq!(batched.to_bits(), scalar.to_bits(), "{label}: all-−∞ row");
            return;
        }
        let scale = dominant_scale(scalar, true_max(a, b, n));
        let tol = ulps * scale * f64::EPSILON;
        assert!(
            (batched - scalar).abs() <= tol,
            "{label}: batched {batched:?} vs scalar {scalar:?} \
             (diff {:.3e}, tol {tol:.3e}, n={n})",
            (batched - scalar).abs()
        );
    }

    #[test]
    fn lse2_handles_neg_infinity_and_denormals() {
        assert_eq!(
            lse2(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        assert_eq!(lse2(3.5, f64::NEG_INFINITY), 3.5);
        assert_eq!(lse2(f64::NEG_INFINITY, -2.25), -2.25);
        // Equal operands: hi + ln_1p(exp(0)) = hi + ln 2, exactly as the
        // unfolded version gave.
        assert_eq!(lse2(1.0, 1.0), 1.0 + 1.0f64.ln_1p());
        // Denormal inputs stay finite and ordered sensibly.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        let v = lse2(tiny, 0.0);
        assert!((v - std::f64::consts::LN_2).abs() < 1e-15, "{v}");
        assert_eq!(lse2(tiny, f64::NEG_INFINITY), tiny);
        // One operand far below the other telescopes to the larger.
        assert_eq!(lse2(0.0, -800.0), 0.0);
        // NaN poison propagates through every branch.
        assert!(lse2(f64::NAN, 1.0).is_nan());
        assert!(lse2(1.0, f64::NAN).is_nan());
        assert!(lse2(f64::NAN, f64::NEG_INFINITY).is_nan());
        assert!(lse2(f64::NEG_INFINITY, f64::NAN).is_nan());
    }

    #[test]
    fn all_neg_infinity_rows_are_exact() {
        let a = vec![f64::NEG_INFINITY; 100];
        let b = vec![f64::NEG_INFINITY; 100];
        let mut scratch = CellScratch::new();
        for n in [0usize, 1, 3, 15, 16, 17, 63, 99] {
            let v = conv_cell(&a, &b, n, &mut scratch);
            assert_eq!(v.to_bits(), f64::NEG_INFINITY.to_bits(), "n={n}");
            assert_eq!(scalar_reference(&a, &b, n).to_bits(), v.to_bits());
        }
    }

    /// NaN must survive even when it lands in a block the pruning pass
    /// would otherwise skip, and when the rest of the row is all −∞.
    #[test]
    fn nan_poison_is_never_pruned_away() {
        let n = 200usize;
        // Steep ramp: only the last few blocks survive pruning.
        let mut a: Vec<f64> = (0..=n).map(|j| j as f64 * 5.0).collect();
        let b = vec![0.0; n + 1];
        let mut scratch = CellScratch::new();
        assert!(conv_cell(&a, &b, n, &mut scratch).is_finite());
        a[3] = f64::NAN; // deep inside the pruned region
        assert!(conv_cell(&a, &b, n, &mut scratch).is_nan());
        assert!(scalar_reference(&a, &b, n).is_nan());
        // NaN among otherwise all-−∞ entries.
        let mut c = vec![f64::NEG_INFINITY; 64];
        c[40] = f64::NAN;
        let d = vec![f64::NEG_INFINITY; 64];
        assert!(conv_cell(&c, &d, 63, &mut scratch).is_nan());
    }

    /// Adversarial dynamic ranges: operands spread over hundreds of nats
    /// with −∞ holes. The sum is dominated by a handful of terms, and the
    /// kernel must match the oracle to 2 ulp at the dominant-term scale.
    #[test]
    fn propcheck_matches_scalar_on_wide_dynamic_ranges() {
        check(
            "kernel_wide_dynamic_ranges",
            &Config::default().cases(64),
            |g: &mut Gen| {
                let n = g.usize_in(0, 400);
                let hole_pct = g.usize_in(0, 60);
                let gen_row = |g: &mut Gen| -> Vec<f64> {
                    (0..=n)
                        .map(|_| {
                            if g.usize_in(0, 99) < hole_pct {
                                f64::NEG_INFINITY
                            } else {
                                g.f64_in(-700.0, 700.0)
                            }
                        })
                        .collect()
                };
                let a = gen_row(g);
                let b = gen_row(g);
                assert_within_ulps(&a, &b, n, 2.0, "wide");
            },
        );
    }

    /// Flat and gently-sloped rows: thousands of comparable terms. Both
    /// reductions carry O(√len · eps) summation noise, so the equivalence
    /// allowance is (2 + √len) ulp — the oracle's own drift, not the
    /// kernel's (see the module docs).
    #[test]
    fn propcheck_matches_scalar_on_flat_and_ramped_rows() {
        check(
            "kernel_flat_and_ramped_rows",
            &Config::default().cases(48),
            |g: &mut Gen| {
                let n = g.usize_in(1, 1500);
                let base = g.f64_in(-50.0, 50.0);
                let spread = g.f64_in(0.0, 2.0);
                let slope = g.f64_in(-0.5, 0.5);
                let a: Vec<f64> = (0..=n)
                    .map(|j| base + slope * j as f64 + g.f64_in(0.0, spread))
                    .collect();
                let b: Vec<f64> = (0..=n).map(|_| g.f64_in(0.0, spread)).collect();
                let ulps = 2.0 + ((n + 1) as f64).sqrt();
                assert_within_ulps(&a, &b, n, ulps, "flat");
            },
        );
    }

    /// Sharply peaked columns (the realistic shape): pruning engages and
    /// the result still matches to 2 ulp, because the pruned tail is below
    /// the accumulator's last bit by construction.
    #[test]
    fn pruned_peaked_rows_match_to_2_ulp() {
        for n in [100usize, 500, 1500] {
            for slope in [0.5f64, 2.0, 7.0] {
                let a: Vec<f64> = (0..=n).map(|j| -(j as f64) * slope).collect();
                let b: Vec<f64> = (0..=n).map(|j| -(j as f64) * 0.9 * slope).collect();
                assert_within_ulps(&a, &b, n, 2.0, "peaked");
            }
        }
    }

    #[test]
    fn residence_fill_is_bit_identical_to_the_inline_loop() {
        let k = 7usize;
        let dq: Vec<f64> = (0..k).map(|i| 0.013 * (i as f64 + 1.0)).collect();
        let dd: Vec<f64> = (0..k).map(|i| 0.002 * (i as f64)).collect();
        let q_prev: Vec<f64> = (0..k).map(|i| 1.7 / (i as f64 + 1.0)).collect();
        let mut res = vec![0.0; k];
        let sum = residence_fill(&dq, &dd, &q_prev, &mut res);
        let mut want = vec![0.0; k];
        let mut want_sum = 0.0;
        for i in 0..k {
            let r = dq[i] * (1.0 + q_prev[i]) + dd[i];
            want[i] = r;
            want_sum += r;
        }
        assert_eq!(sum.to_bits(), want_sum.to_bits());
        for i in 0..k {
            assert_eq!(res[i].to_bits(), want[i].to_bits());
        }
    }

    /// A warm scratch serves any smaller cell without touching capacity.
    #[test]
    fn scratch_reuse_across_cell_sizes() {
        let a: Vec<f64> = (0..=300).map(|j| -(j as f64) * 0.1).collect();
        let b: Vec<f64> = (0..=300).map(|j| -(j as f64) * 0.2).collect();
        let mut scratch = CellScratch::new();
        scratch.ensure(301);
        let full = conv_cell(&a, &b, 300, &mut scratch);
        for n in [0usize, 1, 15, 16, 300] {
            let v = conv_cell(&a, &b, n, &mut scratch);
            assert!(v.is_finite(), "n={n}");
            assert_eq!(scalar_reference(&a, &b, n).is_finite(), v.is_finite());
        }
        // Re-running the big cell after small ones is unaffected by stale
        // scratch contents.
        assert_eq!(
            conv_cell(&a, &b, 300, &mut scratch).to_bits(),
            full.to_bits()
        );
    }
}
