//! Normalization-constant (convolution) evaluation of closed networks —
//! Buzen's algorithm in log-domain.
//!
//! The exact MVA population recursion for multi-server / load-dependent
//! stations closes the marginal distribution with `p(0) = 1 − Σ…`, which
//! cancels catastrophically near saturation; the recursion then amplifies
//! the round-off **exponentially** (a 16-core station — the paper's
//! hardware — produces percent-level errors and Bottleneck-Law violations
//! even in double-double arithmetic). The normalization-constant route has
//! no subtraction anywhere: every quantity is a ratio of sums of positive
//! terms, evaluated here with log-sum-exp so magnitudes like `Zⁿ/n!` never
//! overflow. This is the numerically definitive evaluation used by
//! [`super::multiserver_mva`] (paper Algorithm 2) and
//! [`super::load_dependent_mva`], and by the quasi-static phase of the
//! MVASD recursion.
//!
//! For a single-class network with stations `k` (demand `D_k`, rate
//! multiplier `α_k(j)`) and terminal think time `Z`:
//!
//! ```text
//! f_k(j) = D_k^j / ∏_{i=1}^{j} α_k(i)        (station factor)
//! f_Z(j) = Z^j / j!                          (think stage, infinite-server)
//! G      = f_1 ⊛ f_2 ⊛ … ⊛ f_K ⊛ f_Z         (convolution)
//! X(n)   = G(n−1) / G(n)
//! p_k(j|n) = f_k(j) · G₍₋ₖ₎(n−j) / G(n)
//! Q_k(n)  = Σ_j j · p_k(j|n)
//! ```
//!
//! `G₍₋ₖ₎` (the network without station `k`) is produced for every station
//! from prefix/suffix partial convolutions.
//!
//! Every production path — batch [`solve`], the streaming [`ConvIter`],
//! and the per-population `solve_at` of the quasi-static MVASD phase —
//! runs on the incremental [`ConvWorkspace`] in [`workspace`]: carried
//! log-domain columns extended one cell per population, flat pre-allocated
//! buffers, and O(1) telescoped updates for single-server stages. The
//! pre-workspace from-scratch evaluation survives in [`scratch`] as the
//! independent reference (propcheck oracle and benchmark baseline).

pub mod kernel;
pub(crate) mod scratch;
pub(crate) mod workspace;

pub use scratch::reference_solve_at;
pub use workspace::ConvWorkspace;

use super::loaddep::RateFunction;
use super::stepping::{MvaPoint, SolverIter};
use super::{MvaSolution, PopulationPoint, StationPoint};
use crate::QueueingError;
use mvasd_obsv as obsv;
use std::sync::Arc;

/// One station of the convolution solver (internal normalized form).
#[derive(Debug, Clone)]
pub(crate) struct ConvStation {
    pub name: String,
    pub demand: f64,
    pub rate: RateFunction,
}

/// Complete convolution solution of a closed network (full population
/// series).
#[derive(Debug, Clone)]
pub(crate) struct ConvSolution {
    /// Throughput per population `1..=N`.
    pub x: Vec<f64>,
    /// `queues[k][n-1]` = mean customers at station `k` with population `n`.
    pub queues: Vec<Vec<f64>>,
    /// `marginals[k][n-1][j]` = `p_k(j|n)` for `j = 0..limit_k` where
    /// `limit_k` is the station's marginal-tracking limit (server count for
    /// multi-server stations; empty otherwise). Only filled for stations
    /// where `marginal_limit > 0`.
    pub marginals: Vec<Vec<Vec<f64>>>,
}

/// Single-population solve result: `(X, per-station queues, per-station
/// marginals p(0..limit−1 | n))`.
pub type PointSolution = (f64, Vec<f64>, Vec<Vec<f64>>);

/// [`SolverIter`] over the incremental convolution workspace — the
/// streaming backend behind the multiserver, load-dependent, and
/// convolution solvers.
#[derive(Debug, Clone)]
pub(crate) struct ConvIter {
    ws: ConvWorkspace,
    names: Arc<[String]>,
}

impl ConvIter {
    pub(crate) fn new(
        stations: Vec<ConvStation>,
        think_time: f64,
        marginal_limits: Vec<usize>,
    ) -> Result<Self, QueueingError> {
        let names: Arc<[String]> = stations
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        Ok(Self {
            ws: ConvWorkspace::from_conv(stations, think_time, marginal_limits)?,
            names,
        })
    }
}

impl SolverIter for ConvIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.ws.population()
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("convolution.step");
        obsv::counter("solver.steps", 1);
        self.ws.advance()?;
        Ok(point_at(
            self.ws.stations(),
            self.ws.think_time(),
            self.ws.population(),
            self.ws.throughput(),
            self.ws.queues(),
        ))
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Solves the network exactly for all populations `1..=n_max` by draining
/// an incremental [`ConvWorkspace`]. `n_max = 0` yields an empty solution.
///
/// `marginal_limits[k]` requests the first `limit` marginal probabilities
/// `p_k(0..limit−1 | n)` per population (0 = skip).
pub(crate) fn solve(
    stations: &[ConvStation],
    think_time: f64,
    n_max: usize,
    marginal_limits: &[usize],
) -> Result<ConvSolution, QueueingError> {
    let k_count = stations.len();
    let mut ws = ConvWorkspace::from_conv(stations.to_vec(), think_time, marginal_limits.to_vec())?;
    ws.reserve(n_max);
    let mut x = Vec::with_capacity(n_max);
    let mut queues = vec![Vec::with_capacity(n_max); k_count];
    let mut marginals: Vec<Vec<Vec<f64>>> = (0..k_count).map(|_| Vec::new()).collect();
    for _ in 0..n_max {
        ws.advance()?;
        x.push(ws.throughput());
        for (k, q) in queues.iter_mut().enumerate() {
            q.push(ws.queues()[k]);
            if marginal_limits.get(k).copied().unwrap_or(0) > 0 {
                marginals[k].push(ws.marginals_of(k).to_vec());
            }
        }
    }
    Ok(ConvSolution {
        x,
        queues,
        marginals,
    })
}

/// Shapes one population's convolution output into a [`PopulationPoint`].
/// Shared by the batch assembly and the streaming [`ConvIter`] so both
/// paths produce identical floats.
pub(crate) fn point_at(
    stations: &[ConvStation],
    think_time: f64,
    n: usize,
    x: f64,
    queues: &[f64],
) -> PopulationPoint {
    let station_points = stations
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let queue = queues[k];
            let utilization = match s.rate.max_rate() {
                Some(mr) => x * s.demand / mr,
                None => x * s.demand,
            };
            StationPoint {
                queue,
                residence: if x > 0.0 { queue / x } else { 0.0 },
                utilization,
            }
        })
        .collect();
    let response: f64 = queues.iter().sum::<f64>() / if x > 0.0 { x } else { 1.0 };
    PopulationPoint {
        n,
        throughput: x,
        response,
        cycle_time: response + think_time,
        stations: station_points,
    }
}

/// Assembles an [`MvaSolution`] from a convolution solve.
pub(crate) fn to_mva_solution(
    stations: &[ConvStation],
    think_time: f64,
    sol: &ConvSolution,
) -> MvaSolution {
    let n_max = sol.x.len();
    let mut points = Vec::with_capacity(n_max);
    let mut queues = vec![0.0f64; stations.len()];
    for n in 1..=n_max {
        for (k, q) in sol.queues.iter().enumerate() {
            queues[k] = q[n - 1];
        }
        points.push(point_at(stations, think_time, n, sol.x[n - 1], &queues));
    }
    MvaSolution {
        station_names: stations
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn st(name: &str, demand: f64, rate: RateFunction) -> ConvStation {
        ConvStation {
            name: name.into(),
            demand,
            rate,
        }
    }

    #[test]
    fn machine_repair_exact_all_populations() {
        // Single c-server station + think time: closed form available.
        for (c, d, z) in [(1usize, 0.25f64, 1.0f64), (4, 0.25, 1.0), (16, 0.16, 1.0)] {
            let stations = vec![st("s", d, RateFunction::MultiServer(c))];
            let sol = solve(&stations, z, 400, &[c]).unwrap();
            for n in 1..=400usize {
                let (xe, qe) = mvasd_numerics::erlang::machine_repair(n, c, d, z).unwrap();
                let x = sol.x[n - 1];
                assert!(close(x, xe, 1e-9 * xe.max(1.0)), "c={c} n={n}: {x} vs {xe}");
                assert!(
                    close(sol.queues[0][n - 1], qe, 1e-7 * qe.max(1.0)),
                    "queue c={c} n={n}"
                );
            }
        }
    }

    #[test]
    fn population_conservation() {
        let stations = vec![
            st("cpu", 0.02, RateFunction::MultiServer(16)),
            st("disk", 0.002, RateFunction::SingleServer),
            st("lan", 0.001, RateFunction::Delay),
        ];
        let sol = solve(&stations, 1.0, 300, &[0, 0, 0]).unwrap();
        for n in 1..=300usize {
            let at_stations: f64 = (0..3).map(|k| sol.queues[k][n - 1]).sum();
            let thinking = sol.x[n - 1] * 1.0;
            assert!(
                close(at_stations + thinking, n as f64, 1e-6 * n as f64),
                "n={n}: {} + {}",
                at_stations,
                thinking
            );
        }
    }

    #[test]
    fn bottleneck_law_never_violated() {
        let stations = vec![
            st("cpu", 0.16, RateFunction::MultiServer(16)),
            st("disk", 0.004, RateFunction::SingleServer),
        ];
        let sol = solve(&stations, 1.0, 1500, &[0, 0]).unwrap();
        let cap = (16.0 / 0.16f64).min(1.0 / 0.004);
        let mut prev = 0.0;
        for (i, &x) in sol.x.iter().enumerate() {
            assert!(x <= cap + 1e-9, "n={}: {x} > {cap}", i + 1);
            assert!(x >= prev - 1e-9, "monotonicity at n={}", i + 1);
            prev = x;
        }
        assert!(sol.x[1499] > 0.999 * cap);
    }

    #[test]
    fn marginals_are_probabilities_and_match_busy_identity() {
        let c = 8;
        let stations = vec![st("cpu", 0.08, RateFunction::MultiServer(c))];
        let sol = solve(&stations, 0.5, 120, &[c]).unwrap();
        for n in 1..=120usize {
            let snap = &sol.marginals[0][n - 1];
            let mass: f64 = snap.iter().sum();
            assert!((0.0..=1.0 + 1e-9).contains(&mass));
            // E[min(Q,C)] = X·D (busy-server identity), where
            // E[min(Q,C)] = Σ_{j<C} j·p(j) + C·(1 − Σ_{j<C} p(j)).
            let e_busy: f64 = snap
                .iter()
                .enumerate()
                .map(|(j, p)| j as f64 * p)
                .sum::<f64>()
                + c as f64 * (1.0 - mass);
            let u = sol.x[n - 1] * 0.08;
            assert!(close(e_busy, u, 1e-8 * u.max(1e-12)), "n={n}");
        }
    }

    #[test]
    fn solve_at_matches_full_series() {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
        ];
        let demands = [0.03, 0.01];
        let full = solve(&stations, 1.0, 150, &[4, 1]).unwrap();
        let mut ws = ConvWorkspace::from_conv(stations.clone(), 1.0, vec![4, 1]).unwrap();
        for n in [1usize, 17, 80, 150] {
            ws.solve_at(n, &demands).unwrap();
            let x = ws.throughput();
            assert!(close(x, full.x[n - 1], 1e-12 * x));
            assert!(close(ws.queues()[0], full.queues[0][n - 1], 1e-9));
            assert!(close(ws.queues()[1], full.queues[1][n - 1], 1e-9));
            for (j, mv) in ws.marginals_of(0).iter().enumerate().take(4) {
                assert!(close(*mv, full.marginals[0][n - 1][j], 1e-10));
            }
        }
    }

    #[test]
    fn zero_think_time_supported() {
        let stations = vec![st("s", 0.1, RateFunction::SingleServer)];
        let sol = solve(&stations, 0.0, 50, &[0]).unwrap();
        // Batch network: X = 1/D for every n >= 1 (single station).
        for &x in &sol.x {
            assert!(close(x, 10.0, 1e-9));
        }
    }

    #[test]
    fn zero_demand_station_is_transparent() {
        let with = vec![
            st("s", 0.1, RateFunction::SingleServer),
            st("ghost", 0.0, RateFunction::SingleServer),
        ];
        let without = vec![st("s", 0.1, RateFunction::SingleServer)];
        let a = solve(&with, 1.0, 60, &[0, 0]).unwrap();
        let b = solve(&without, 1.0, 60, &[0]).unwrap();
        for n in 0..60 {
            assert!(close(a.x[n], b.x[n], 1e-12));
            assert!(close(a.queues[1][n], 0.0, 1e-12));
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(solve(&[], 1.0, 10, &[]).is_err());
        let s = vec![st("s", 0.1, RateFunction::SingleServer)];
        // Zero population is a valid (empty) sweep for the series solve…
        let empty = solve(&s, 1.0, 0, &[0]).unwrap();
        assert!(empty.x.is_empty());
        assert_eq!(empty.queues.len(), 1);
        // …but meaningless for a single-point solve.
        let mut ws = ConvWorkspace::from_conv(s, 1.0, vec![0]).unwrap();
        assert!(ws.solve_at(0, &[0.1]).is_err());
    }

    #[test]
    fn streaming_iterator_matches_batch_bit_for_bit() {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
            st("lan", 0.005, RateFunction::Delay),
        ];
        let batch = to_mva_solution(
            &stations,
            0.7,
            &solve(&stations, 0.7, 120, &[0, 0, 0]).unwrap(),
        );
        let mut it = ConvIter::new(stations, 0.7, vec![0, 0, 0]).unwrap();
        let streamed = it.drain(120).unwrap();
        assert_eq!(batch, streamed);

        // Snapshot mid-sweep, resume, and land on the same floats.
        let mut it2 = streamed_iter_to(60, &batch);
        let snap = it2.snapshot();
        let tail_direct = it2.drain(120).unwrap();
        let tail_resumed = snap.resume().drain(120).unwrap();
        assert_eq!(tail_direct, tail_resumed);
        assert_eq!(&batch.points[60..], tail_direct.points.as_slice());
    }

    /// A ConvIter stepped to population `n` over the same model as
    /// `streaming_iterator_matches_batch_bit_for_bit`.
    fn streamed_iter_to(n: usize, reference: &MvaSolution) -> ConvIter {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
            st("lan", 0.005, RateFunction::Delay),
        ];
        let mut it = ConvIter::new(stations, 0.7, vec![0, 0, 0]).unwrap();
        for i in 0..n {
            let p = it.step().unwrap();
            assert_eq!(p, reference.points[i]);
        }
        it
    }

    #[test]
    fn custom_rate_function_supported() {
        // A "2.5-way effective" station: rates 1, 1.8, 2.5 then flat.
        let stations = vec![st("s", 0.1, RateFunction::Custom(vec![1.0, 1.8, 2.5]))];
        let sol = solve(&stations, 0.2, 200, &[0]).unwrap();
        let cap = 2.5 / 0.1;
        let mut prev = 0.0;
        for &x in &sol.x {
            assert!(x <= cap + 1e-9);
            assert!(x >= prev - 1e-9);
            prev = x;
        }
        assert!(sol.x[199] > 0.99 * cap);
    }

    #[test]
    fn delay_dominated_network() {
        // Queueing station negligible next to a big delay stage: X ≈ n/(Z+Ddelay).
        let stations = vec![
            st("tiny", 1e-5, RateFunction::SingleServer),
            st("lan", 0.5, RateFunction::Delay),
        ];
        let sol = solve(&stations, 1.5, 50, &[0, 0]).unwrap();
        for n in 1..=50usize {
            let expect = n as f64 / 2.0; // ~ n/(1.5 + 0.5)
            let x = sol.x[n - 1];
            assert!((x - expect).abs() < 0.02 * expect, "n={n}: {x} vs {expect}");
        }
    }

    #[test]
    fn huge_population_no_overflow() {
        // Zⁿ/n! for n = 3000 spans hundreds of orders of magnitude; the
        // log-domain evaluation must sail through.
        let stations = vec![st("s", 0.01, RateFunction::SingleServer)];
        let sol = solve(&stations, 10.0, 3000, &[0]).unwrap();
        assert!(sol.x[2999].is_finite());
        assert!(sol.x[2999] <= 100.0 + 1e-6);
        assert!(sol.x[2999] > 99.0);
    }
}
