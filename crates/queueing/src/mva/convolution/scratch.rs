//! The from-scratch (pre-workspace) convolution evaluation, kept as the
//! reference implementation.
//!
//! Everything here rebuilds the full log-domain factor columns and
//! prefix/suffix partial convolutions on every call — `O(K·n²)` work and
//! `O(K·n)` fresh allocation per population. The incremental
//! [`super::workspace::ConvWorkspace`] replaces it on every hot path; this
//! module survives for two jobs:
//!
//! 1. **Oracle** — the propcheck suites assert the workspace agrees with
//!    this independent evaluation to 1e-12 across random networks.
//! 2. **Baseline** — `benches/convolution.rs` measures the workspace
//!    speedup against exactly this per-step path (the pre-workspace cost
//!    model), so the recorded ratio is honest.

use super::super::loaddep::{validated_conv_stations, LdStation, RateFunction};
use super::{ConvStation, PointSolution};
use crate::QueueingError;

/// `ln Σ exp(aᵢ)` over the pairwise products of a convolution cell:
/// `c(n) = ln Σ_j exp(a(j) + b(n−j))`, skipping `−∞` terms. Two passes:
/// max first, then the scaled sum.
pub(crate) fn log_conv_cell(a: &[f64], b: &[f64], n: usize) -> f64 {
    let lo = n.saturating_sub(b.len() - 1);
    let hi = n.min(a.len() - 1);
    let mut m = f64::NEG_INFINITY;
    for j in lo..=hi {
        let t = a[j] + b[n - j];
        if t > m {
            m = t;
        }
    }
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut acc = 0.0;
    for j in lo..=hi {
        let t = a[j] + b[n - j];
        if t > f64::NEG_INFINITY {
            // lint: log-domain-ok reference-oracle log-sum-exp, cold path by design
            acc += (t - m).exp();
        }
    }
    // lint: log-domain-ok reference-oracle log-sum-exp, cold path by design
    m + acc.ln()
}

/// Full log-domain convolution `c = a ⊛ b` truncated at `n_max`.
fn log_convolve(a: &[f64], b: &[f64], n_max: usize) -> Vec<f64> {
    (0..=n_max).map(|n| log_conv_cell(a, b, n)).collect()
}

/// `ln f_k(j)` for `j = 0..=n_max`.
fn log_factors(demand: f64, rate: &RateFunction, n_max: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_max + 1);
    out.push(0.0); // ln f(0) = ln 1
    if demand <= 0.0 {
        out.resize(n_max + 1, f64::NEG_INFINITY);
        return out;
    }
    // lint: log-domain-ok rebuilding log factor columns is this oracle's whole job
    let ld = demand.ln();
    let mut acc = 0.0;
    for j in 1..=n_max {
        // lint: log-domain-ok rebuilding log factor columns is this oracle's whole job
        acc += ld - rate.rate(j).ln();
        out.push(acc);
    }
    out
}

/// `ln f_Z(j) = j·ln Z − ln j!`.
fn log_think_factors(z: f64, n_max: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_max + 1);
    out.push(0.0);
    if z <= 0.0 {
        out.resize(n_max + 1, f64::NEG_INFINITY);
        return out;
    }
    // lint: log-domain-ok rebuilding log think factors is this oracle's whole job
    let lz = z.ln();
    let mut acc = 0.0;
    for j in 1..=n_max {
        // lint: log-domain-ok rebuilding log think factors is this oracle's whole job
        acc += lz - (j as f64).ln();
        out.push(acc);
    }
    out
}

/// Solves only the top population `n`, rebuilding everything from scratch.
/// This is the pre-workspace quasi-static path, verbatim.
pub(crate) fn solve_at(
    stations: &[ConvStation],
    think_time: f64,
    n: usize,
    marginal_limits: &[usize],
) -> Result<PointSolution, QueueingError> {
    if stations.is_empty() {
        return Err(QueueingError::EmptyNetwork);
    }
    if n == 0 {
        return Err(QueueingError::InvalidParameter {
            what: "population must be >= 1",
        });
    }
    let k_count = stations.len();
    let mut factors: Vec<Vec<f64>> = stations
        .iter()
        .map(|s| log_factors(s.demand, &s.rate, n))
        .collect();
    factors.push(log_think_factors(think_time, n));
    let total = factors.len();

    let identity = {
        let mut v = vec![f64::NEG_INFINITY; n + 1];
        v[0] = 0.0;
        v
    };
    let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(total + 1);
    prefix.push(identity.clone());
    for f in factors.iter() {
        let last = prefix.last().expect("non-empty");
        prefix.push(log_convolve(last, f, n));
    }
    let mut suffix: Vec<Vec<f64>> = vec![identity; total + 1];
    for i in (0..total).rev() {
        suffix[i] = log_convolve(&factors[i], &suffix[i + 1], n);
    }
    let g = &prefix[total];
    // lint: log-domain-ok throughput leaves log domain once, at the very end
    let x = (g[n - 1] - g[n]).exp();

    let mut queues = vec![0.0f64; k_count];
    let mut marginals: Vec<Vec<f64>> = Vec::with_capacity(k_count);
    for k in 0..k_count {
        let limit = marginal_limits.get(k).copied().unwrap_or(0);
        if matches!(stations[k].rate, RateFunction::Delay) && limit == 0 {
            queues[k] = x * stations[k].demand;
            marginals.push(Vec::new());
            continue;
        }
        let g_minus = log_convolve(&prefix[k], &suffix[k + 1], n);
        let fk = &factors[k];
        let mut q = 0.0;
        let mut snap = vec![0.0f64; limit];
        for j in 0..=n {
            let lp = fk[j] + g_minus[n - j] - g[n];
            if lp > -700.0 {
                // lint: log-domain-ok marginal probabilities leave log domain at output
                let p = lp.exp();
                q += j as f64 * p;
                if j < limit {
                    snap[j] = p;
                }
            }
        }
        queues[k] = q;
        marginals.push(snap);
    }
    Ok((x, queues, marginals))
}

/// Public face of the reference path: from-scratch single-population solve
/// over validated [`LdStation`]s. Exists so benchmarks and property tests
/// outside this crate can compare the incremental workspace against an
/// independent evaluation.
pub fn reference_solve_at(
    stations: &[LdStation],
    think_time: f64,
    n: usize,
    marginal_limits: &[usize],
) -> Result<PointSolution, QueueingError> {
    let conv = validated_conv_stations(stations, think_time)?;
    solve_at(&conv, think_time, n, marginal_limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(name: &str, demand: f64, rate: RateFunction) -> ConvStation {
        ConvStation {
            name: name.into(),
            demand,
            rate,
        }
    }

    #[test]
    fn scratch_solve_at_matches_machine_repair() {
        for (c, d, z) in [(1usize, 0.25f64, 1.0f64), (4, 0.25, 1.0), (16, 0.16, 1.0)] {
            let stations = vec![st("s", d, RateFunction::MultiServer(c))];
            for n in [1usize, 7, 50, 200] {
                let (x, q, _) = solve_at(&stations, z, n, &[c]).unwrap();
                let (xe, qe) = mvasd_numerics::erlang::machine_repair(n, c, d, z).unwrap();
                assert!((x - xe).abs() <= 1e-9 * xe.max(1.0), "c={c} n={n}");
                assert!((q[0] - qe).abs() <= 1e-7 * qe.max(1.0), "c={c} n={n}");
            }
        }
    }

    #[test]
    fn scratch_rejects_bad_inputs() {
        assert!(solve_at(&[], 1.0, 5, &[]).is_err());
        let s = vec![st("s", 0.1, RateFunction::SingleServer)];
        assert!(solve_at(&s, 1.0, 0, &[0]).is_err());
    }

    #[test]
    fn reference_face_validates_and_solves() {
        let good = [LdStation::new("s", 0.1, RateFunction::SingleServer)];
        let (x, _, _) = reference_solve_at(&good, 1.0, 10, &[0]).unwrap();
        assert!(x > 0.0 && x.is_finite());
        let bad = [LdStation::new("s", -1.0, RateFunction::SingleServer)];
        assert!(reference_solve_at(&bad, 1.0, 10, &[0]).is_err());
    }
}
