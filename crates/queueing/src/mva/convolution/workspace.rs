//! The incremental convolution workspace: Buzen's algorithm with carried
//! state, O(total·n) log-sum-exp work per population step, and zero heap
//! allocation per step once warm.
//!
//! [`ConvWorkspace`] owns every array the recursion touches as a flat,
//! stride-indexed buffer ([`Grid`]): per-stage log factor columns, the
//! ascending prefix chain `prefix[i] = f_0 ⊛ … ⊛ f_{i−1}`, the descending
//! suffix chain `suffix[i] = f_i ⊛ … ⊛ f_{total−1}`, the per-station
//! complements `G₍₋ₖ₎ = prefix[k] ⊛ suffix[k+1]`, and the O(1)-state queue
//! accumulators for light single-server stations. One [`advance`] appends
//! exactly one cell to each live column; nothing already written is ever
//! mutated, which is what makes the incremental, snapshot/resume, and
//! rebuild paths **bit-for-bit identical** — they all execute the same
//! per-cell code in the same order.
//!
//! Per-stage work is specialized by [`StageKind`]:
//!
//! * `Zero` — zero demand: the factor column is the convolution identity,
//!   so prefix/suffix cells are plain copies.
//! * `Geo` — single-server-like (`f(j) = D^j`): the convolution with a
//!   geometric column telescopes, `(A ⊛ f)(n) = A(n) ⊕ (ln D + (A ⊛ f)(n−1))`
//!   (`⊕` = log-sum-exp), one O(1) update instead of an O(n) sweep. A light
//!   single-server station additionally skips `G₍₋ₖ₎` entirely: its queue
//!   satisfies `h(n) = D·(G(n−1) + h(n−1))`, `Q(n) = h(n)/G(n)`, carried as
//!   one log-domain scalar per population.
//! * `Exp` — infinite-server (`f(j) = D^j/j!`): full cell, with `ln j`
//!   read from a table computed once per capacity growth.
//! * `Table` — multi-server / custom rate: full cell, with `ln α(j)`
//!   precomputed per station so rebuilds never call `ln()` in the loop.
//!
//! Suffix and `G₍₋ₖ₎` maintenance is skipped wholesale when no station
//! needs the heavy marginal path. Log-sum-exp cells run on the batched
//! [`super::kernel`]: a reversed-stride add, blocked 4-lane maxima, and a
//! pruned exp-accumulate pass that skips blocks more than 46 nats below
//! the peak (the workspace carries the kernel's [`kernel::CellScratch`]
//! and sizes it alongside every other buffer). The old single-pass
//! running-maximum cell survives as [`kernel::scalar_reference`], the
//! kernel's equivalence oracle.
//!
//! Changing the demand vector ([`solve_at`]) re-runs the recursion from
//! population 0 inside the same buffers — `O(n²)` cells but **zero**
//! allocation and zero `ln()` calls beyond one `ln D` per stage — which is
//! what the quasi-static MVASD phase does at every population step.
//!
//! [`advance`]: ConvWorkspace::advance
//! [`solve_at`]: ConvWorkspace::solve_at

use super::super::loaddep::{validated_conv_stations, LdStation, RateFunction};
use super::kernel::{self, lse2};
use super::ConvStation;
use crate::QueueingError;
use mvasd_obsv as obsv;

/// How the workspace extends one stage's factor/prefix/suffix cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// Zero demand: `f = (1, 0, 0, …)`, the convolution identity.
    Zero,
    /// Single-server-like: `f(j) = D^j`, telescoping O(1) updates.
    Geo,
    /// Infinite-server: `f(j) = D^j / j!`.
    Exp,
    /// Rate-table station (multi-server or custom): `f(j) = D^j / ∏ α(i)`.
    Table,
}

/// A fixed number of equally-long `f64` rows in one flat allocation.
/// `cap` is the per-row stride; rows grow together and keep their first
/// `keep` entries on reallocation.
#[derive(Debug, Clone)]
struct Grid {
    buf: Vec<f64>,
    rows: usize,
    cap: usize,
}

impl Grid {
    fn new(rows: usize) -> Self {
        Self {
            buf: Vec::new(),
            rows,
            cap: 0,
        }
    }

    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        &self.buf[r * self.cap..(r + 1) * self.cap]
    }

    #[inline]
    fn at(&self, r: usize, j: usize) -> f64 {
        self.buf[r * self.cap + j]
    }

    #[inline]
    fn set(&mut self, r: usize, j: usize, v: f64) {
        self.buf[r * self.cap + j] = v;
    }

    fn grow(&mut self, new_cap: usize, keep: usize) {
        debug_assert!(new_cap > self.cap);
        // NaN poison: any read of a never-written cell is loudly wrong.
        let mut next = vec![f64::NAN; self.rows * new_cap];
        for r in 0..self.rows {
            next[r * new_cap..r * new_cap + keep]
                .copy_from_slice(&self.buf[r * self.cap..r * self.cap + keep]);
        }
        self.buf = next;
        self.cap = new_cap;
    }

    fn bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<f64>()
    }
}

/// Sentinel for "this station has no row in that grid".
const NO_ROW: usize = usize::MAX;

/// Incremental log-domain convolution engine. See the module docs for the
/// layout and the per-kind update rules.
///
/// Cloning snapshots the entire recursion state (a handful of `memcpy`s),
/// which is what makes solver snapshots cheap.
#[derive(Debug, Clone)]
pub struct ConvWorkspace {
    stations: Vec<ConvStation>,
    think_time: f64,
    limits: Vec<usize>,

    /// Last population evaluated (0 = fresh).
    n: usize,
    /// Per-stage extension rule (stations then think stage); recomputed on
    /// every demand change.
    kind: Vec<StageKind>,
    /// `ln D_i` per stage (`ln Z` for the think stage); `−∞` when zero.
    ln_d: Vec<f64>,
    /// Whether station `k` currently needs the `G₍₋ₖ₎` marginal path.
    heavy: Vec<bool>,
    /// Any heavy station at all? Gates the whole suffix chain.
    any_heavy: bool,

    /// Row of `ln_g_minus` for stations that can ever be heavy (else NO_ROW).
    g_row: Vec<usize>,
    /// Row of `ln_lq` for light single-server-like stations (else NO_ROW).
    lq_row: Vec<usize>,
    /// Row of `ln_rate` for rate-table stations (else NO_ROW).
    rate_row: Vec<usize>,

    /// `ln j` for `j = 1..cap` (index 0 unused), shared by all Exp stages.
    ln_int: Vec<f64>,
    /// `ln α_k(j)` per rate-table station, computed once per growth.
    ln_rate: Grid,

    /// `ln_factors[i][j] = ln f_i(j)`, stations then the think stage.
    ln_factors: Grid,
    /// `ln_prefix[i] = f_0 ⊛ … ⊛ f_{i−1}` (`ln_prefix[0]` = identity); the last
    /// row is `ln G`.
    ln_prefix: Grid,
    /// `suffix[i] = f_i ⊛ … ⊛ f_{total−1}` (`suffix[total]` = identity).
    /// Only maintained while a heavy station exists.
    suffix: Grid,
    /// `ln_g_minus[row] = ln G₍₋ₖ₎` for heavy-capable stations.
    ln_g_minus: Grid,
    /// `ln_lq[row][n] = ln Σ_{j≥1} j·D^j·G(n−j)`… telescoped: the light
    /// single-server queue numerator `h(n)`.
    ln_lq: Grid,

    // Per-population outputs, overwritten in place by `compute_outputs`.
    out_x: f64,
    out_queues: Vec<f64>,
    /// Marginal snapshots `p_k(0..limit−1 | n)`, packed back to back.
    out_marginals: Vec<f64>,
    /// Offset of station `k`'s marginal block in `out_marginals`.
    marg_off: Vec<usize>,

    /// Scratch for the batched log-sum-exp kernel, sized alongside the
    /// grids so full cells never allocate.
    cell: kernel::CellScratch,

    extend_ctr: obsv::CounterBatch,
    cells_ctr: obsv::CounterBatch,
    /// Watches `ln G` per extension (log-sum-exp dynamic range, NaN-poison
    /// trips) and counts marginal-term underflows. Locally buffered;
    /// flushed by [`flush_metrics`](Self::flush_metrics) and on drop.
    health: obsv::HealthProbe,
}

impl ConvWorkspace {
    /// Builds a workspace over validated load-dependent stations.
    /// `marginal_limits[k]` requests the first `limit` marginal
    /// probabilities per population (0 = skip; missing entries = 0).
    pub fn new(
        stations: &[LdStation],
        think_time: f64,
        marginal_limits: &[usize],
    ) -> Result<Self, QueueingError> {
        let conv = validated_conv_stations(stations, think_time)?;
        Self::from_conv(conv, think_time, marginal_limits.to_vec())
    }

    pub(crate) fn from_conv(
        stations: Vec<ConvStation>,
        think_time: f64,
        mut limits: Vec<usize>,
    ) -> Result<Self, QueueingError> {
        if stations.is_empty() {
            return Err(QueueingError::EmptyNetwork);
        }
        let k_count = stations.len();
        let total = k_count + 1; // + think stage
        limits.resize(k_count, 0);

        let mut g_row = vec![NO_ROW; k_count];
        let mut lq_row = vec![NO_ROW; k_count];
        let mut rate_row = vec![NO_ROW; k_count];
        let (mut g_rows, mut lq_rows, mut rate_rows) = (0, 0, 0);
        for (k, s) in stations.iter().enumerate() {
            let table_capable = matches!(
                s.rate,
                RateFunction::MultiServer(2..) | RateFunction::Custom(_)
            );
            if table_capable {
                rate_row[k] = rate_rows;
                rate_rows += 1;
            }
            if limits[k] > 0 || table_capable {
                g_row[k] = g_rows;
                g_rows += 1;
            } else if matches!(
                s.rate,
                RateFunction::SingleServer | RateFunction::MultiServer(1)
            ) {
                lq_row[k] = lq_rows;
                lq_rows += 1;
            }
        }

        let mut marg_off = Vec::with_capacity(k_count);
        let mut off = 0usize;
        for &limit in &limits {
            marg_off.push(off);
            off += limit;
        }

        let mut ws = Self {
            stations,
            think_time,
            limits,
            n: 0,
            kind: vec![StageKind::Zero; total],
            ln_d: vec![f64::NEG_INFINITY; total],
            heavy: vec![false; k_count],
            any_heavy: false,
            g_row,
            lq_row,
            rate_row,
            ln_int: Vec::new(),
            ln_rate: Grid::new(rate_rows),
            ln_factors: Grid::new(total),
            ln_prefix: Grid::new(total + 1),
            suffix: Grid::new(total + 1),
            ln_g_minus: Grid::new(g_rows),
            ln_lq: Grid::new(lq_rows),
            out_x: 0.0,
            out_queues: vec![0.0; k_count],
            out_marginals: vec![0.0; off],
            marg_off,
            cell: kernel::CellScratch::new(),
            extend_ctr: obsv::CounterBatch::new("conv.workspace.extend", 64),
            cells_ctr: obsv::CounterBatch::new("convolution.cells", 64),
            health: obsv::HealthProbe::new("conv.lse"),
        };
        ws.refresh_kinds();
        ws.ensure_capacity(1);
        ws.reset();
        Ok(ws)
    }

    /// The model's stations (names, current demands, rates).
    pub(crate) fn stations(&self) -> &[ConvStation] {
        &self.stations
    }

    /// The model's think time.
    pub(crate) fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Last population evaluated (0 = fresh).
    pub fn population(&self) -> usize {
        self.n
    }

    /// Pre-sizes every buffer for populations up to `n_max`, so no further
    /// allocation happens before the sweep passes it.
    pub fn reserve(&mut self, n_max: usize) {
        self.ensure_capacity(n_max + 1);
    }

    /// Throughput `X(n)` of the last `advance`/`solve_at`.
    pub fn throughput(&self) -> f64 {
        self.out_x
    }

    /// Mean queue lengths of the last `advance`/`solve_at`.
    pub fn queues(&self) -> &[f64] {
        &self.out_queues
    }

    /// Marginal probabilities `p_k(0..limit−1 | n)` of the last
    /// `advance`/`solve_at` (empty when the station tracks none).
    pub fn marginals_of(&self, k: usize) -> &[f64] {
        let limit = self.limits.get(k).copied().unwrap_or(0);
        let off = self.marg_off.get(k).copied().unwrap_or(0);
        &self.out_marginals[off..off + limit]
    }

    /// Flushes the batched instrumentation counters and the numeric-health
    /// probe to the recorder.
    pub fn flush_metrics(&mut self) {
        self.extend_ctr.flush();
        self.cells_ctr.flush();
        self.health.flush();
    }

    /// Re-derives the per-stage extension rules from the current demands.
    fn refresh_kinds(&mut self) {
        let total = self.stations.len() + 1;
        for (k, s) in self.stations.iter().enumerate() {
            let (kind, ld) = if s.demand <= 0.0 {
                (StageKind::Zero, f64::NEG_INFINITY)
            } else {
                let kind = match s.rate {
                    RateFunction::Delay => StageKind::Exp,
                    RateFunction::SingleServer | RateFunction::MultiServer(1) => StageKind::Geo,
                    _ => StageKind::Table,
                };
                let ln_demand = s.demand.ln();
                (kind, ln_demand)
            };
            self.kind[k] = kind;
            self.ln_d[k] = ld;
            self.heavy[k] = self.limits[k] > 0 || kind == StageKind::Table;
        }
        if self.think_time > 0.0 {
            self.kind[total - 1] = StageKind::Exp;
            self.ln_d[total - 1] = self.think_time.ln();
        } else {
            self.kind[total - 1] = StageKind::Zero;
            self.ln_d[total - 1] = f64::NEG_INFINITY;
        }
        self.any_heavy = self.heavy.iter().any(|&h| h);
    }

    /// Grows every grid so populations `0..len` fit, extending the `ln`
    /// tables for the new range. Growth is the only allocation the
    /// workspace ever performs after construction.
    fn ensure_capacity(&mut self, len: usize) {
        if len <= self.ln_factors.cap {
            return;
        }
        let new_cap = len.next_power_of_two().max(self.ln_factors.cap * 2).max(64);
        let old_cap = self.ln_factors.cap;
        let keep = (self.n + 1).min(old_cap);
        self.ln_factors.grow(new_cap, keep);
        self.ln_prefix.grow(new_cap, keep);
        self.suffix.grow(new_cap, keep);
        self.ln_g_minus.grow(new_cap, keep);
        self.ln_lq.grow(new_cap, keep);
        self.cell.ensure(new_cap);

        self.ln_int.resize(new_cap, 0.0);
        let from = old_cap.max(1);
        for j in from..new_cap {
            self.ln_int[j] = (j as f64).ln();
        }
        self.ln_rate.grow(new_cap, old_cap);
        for (k, s) in self.stations.iter().enumerate() {
            let r = self.rate_row[k];
            if r == NO_ROW {
                continue;
            }
            if old_cap == 0 {
                self.ln_rate.set(r, 0, 0.0); // j = 0 is never read
            }
            for j in from..new_cap {
                self.ln_rate.set(r, j, s.rate.rate(j).ln());
            }
        }

        if obsv::enabled() {
            let bytes = self.ln_factors.bytes()
                + self.ln_prefix.bytes()
                + self.suffix.bytes()
                + self.ln_g_minus.bytes()
                + self.ln_lq.bytes()
                + self.ln_rate.bytes()
                + self.ln_int.len() * std::mem::size_of::<f64>();
            obsv::counter("conv.workspace.alloc", 1);
            obsv::gauge("conv.workspace.bytes", bytes as f64);
        }
    }

    /// Rewinds to population 0, re-initializing only the `j = 0` cells:
    /// `f(0) = G(0) = G₍₋ₖ₎(0) = 1`, `h(0) = 0`.
    fn reset(&mut self) {
        self.n = 0;
        let total = self.stations.len() + 1;
        for i in 0..total {
            self.ln_factors.set(i, 0, 0.0);
        }
        for i in 0..=total {
            self.ln_prefix.set(i, 0, 0.0);
            self.suffix.set(i, 0, 0.0);
        }
        for r in 0..self.ln_g_minus.rows {
            self.ln_g_minus.set(r, 0, 0.0);
        }
        for r in 0..self.ln_lq.rows {
            self.ln_lq.set(r, 0, f64::NEG_INFINITY);
        }
    }

    /// Extends every live column by the cell for population `self.n + 1`.
    /// Cells are append-only, so values never depend on how far the
    /// workspace is later extended — the root of the bit-for-bit guarantee.
    // lint: no-alloc
    fn extend_one(&mut self) -> Result<(), QueueingError> {
        let m = self.n + 1;
        self.ensure_capacity(m + 1);
        let total = self.stations.len() + 1;

        for i in 0..total {
            let v = match self.kind[i] {
                StageKind::Zero => f64::NEG_INFINITY,
                StageKind::Geo => self.ln_factors.at(i, m - 1) + self.ln_d[i],
                StageKind::Exp => self.ln_factors.at(i, m - 1) + (self.ln_d[i] - self.ln_int[m]),
                StageKind::Table => {
                    let lr = self.ln_rate.at(self.rate_row[i], m);
                    self.ln_factors.at(i, m - 1) + (self.ln_d[i] - lr)
                }
            };
            self.ln_factors.set(i, m, v);
        }

        self.ln_prefix.set(0, m, f64::NEG_INFINITY); // identity
        for i in 0..total {
            let v = match self.kind[i] {
                StageKind::Zero => self.ln_prefix.at(i, m),
                StageKind::Geo => lse2(
                    self.ln_prefix.at(i, m),
                    self.ln_d[i] + self.ln_prefix.at(i + 1, m - 1),
                ),
                _ => kernel::conv_cell(
                    self.ln_prefix.row(i),
                    self.ln_factors.row(i),
                    m,
                    &mut self.cell,
                ),
            };
            self.ln_prefix.set(i + 1, m, v);
        }

        let g_m = self.ln_prefix.at(total, m);
        self.health.watch(g_m);
        if g_m == f64::NEG_INFINITY && self.ln_prefix.at(total, m - 1) != f64::NEG_INFINITY {
            return Err(QueueingError::InvalidParameter {
                what: "normalization constant vanished (all-zero demands?)",
            });
        }

        if self.any_heavy {
            self.suffix.set(total, m, f64::NEG_INFINITY); // identity
            for i in (0..total).rev() {
                let v = match self.kind[i] {
                    StageKind::Zero => self.suffix.at(i + 1, m),
                    StageKind::Geo => lse2(
                        self.suffix.at(i + 1, m),
                        self.ln_d[i] + self.suffix.at(i, m - 1),
                    ),
                    _ => kernel::conv_cell(
                        self.ln_factors.row(i),
                        self.suffix.row(i + 1),
                        m,
                        &mut self.cell,
                    ),
                };
                self.suffix.set(i, m, v);
            }
            for k in 0..self.stations.len() {
                if self.heavy[k] {
                    let v = kernel::conv_cell(
                        self.ln_prefix.row(k),
                        self.suffix.row(k + 1),
                        m,
                        &mut self.cell,
                    );
                    self.ln_g_minus.set(self.g_row[k], m, v);
                }
            }
        }

        for k in 0..self.stations.len() {
            let r = self.lq_row[k];
            if r != NO_ROW && self.kind[k] == StageKind::Geo && !self.heavy[k] {
                let v =
                    self.ln_d[k] + lse2(self.ln_lq.at(r, m - 1), self.ln_prefix.at(total, m - 1));
                self.ln_lq.set(r, m, v);
            }
        }

        self.n = m;
        self.extend_ctr.add(1);
        if obsv::enabled() {
            let heavy_count = self.heavy.iter().filter(|&&h| h).count();
            let cells = if self.any_heavy {
                2 * total + heavy_count
            } else {
                total
            };
            self.cells_ctr.add(cells as u64);
            obsv::gauge("convolution.ln_g", g_m);
        }
        Ok(())
    }

    /// Fills the output slots (`throughput`/`queues`/`marginals_of`) for
    /// population `n ≤ self.n`. Read-only over the columns; allocates
    /// nothing.
    // lint: no-alloc
    fn compute_outputs(&mut self, n: usize) {
        debug_assert!(n >= 1 && n <= self.n);
        let total = self.stations.len() + 1;
        let g_n = self.ln_prefix.at(total, n);
        let x = (self.ln_prefix.at(total, n - 1) - g_n).exp();
        self.out_x = x;
        for k in 0..self.stations.len() {
            if self.heavy[k] {
                let limit = self.limits[k];
                let off = self.marg_off[k];
                self.out_marginals[off..off + limit].fill(0.0);
                let gr = self.g_row[k];
                let mut q = 0.0;
                for j in 0..=n {
                    let lp = self.ln_factors.at(k, j) + self.ln_g_minus.at(gr, n - j) - g_n;
                    if lp > -700.0 {
                        let p = lp.exp();
                        q += j as f64 * p;
                        if j < limit {
                            self.out_marginals[off + j] = p;
                        }
                    } else if lp != f64::NEG_INFINITY {
                        // A finite marginal term too small for exp():
                        // dropped, which is safe but worth counting.
                        self.health.count_underflow();
                    }
                }
                self.out_queues[k] = q;
            } else {
                self.out_queues[k] = match self.kind[k] {
                    StageKind::Zero => 0.0,
                    // Infinite-server: Q = X·D exactly (Little).
                    StageKind::Exp => x * self.stations[k].demand,
                    StageKind::Geo => (self.ln_lq.at(self.lq_row[k], n) - g_n).exp(),
                    StageKind::Table => unreachable!("table stations are always heavy"),
                };
            }
        }
    }

    /// Advances one population and refreshes the outputs — the streaming
    /// hot path: O(total·n) cells, zero allocation once capacity is there.
    ///
    /// On error the columns are poisoned (partially extended) and the
    /// workspace must be discarded; all errors here are deterministic model
    /// errors, so a retry could not succeed anyway.
    // lint: no-alloc
    pub fn advance(&mut self) -> Result<(), QueueingError> {
        self.extend_one()?;
        self.compute_outputs(self.n);
        Ok(())
    }

    /// Evaluates population `n` under `demands` (one per station), reusing
    /// as much carried state as possible:
    ///
    /// * same demands, `n > population()` — incremental extension;
    /// * same demands, `n ≤ population()` — pure read-back, zero cells;
    /// * changed demands — in-buffer rebuild (reset + extend to `n`),
    ///   counted as `conv.workspace.rebuild`.
    ///
    /// Demand equality is bitwise: the quasi-static caller hands back the
    /// exact floats it got from the interpolator, so an epsilon would only
    /// blur the rebuild accounting.
    pub fn solve_at(&mut self, n: usize, demands: &[f64]) -> Result<(), QueueingError> {
        if n == 0 {
            return Err(QueueingError::InvalidParameter {
                what: "population must be >= 1",
            });
        }
        if demands.len() != self.stations.len() {
            return Err(QueueingError::InvalidParameter {
                what: "demand vector length does not match the station count",
            });
        }
        let changed = self
            .stations
            .iter()
            .zip(demands)
            .any(|(s, d)| s.demand.to_bits() != d.to_bits());
        if changed {
            for (s, &d) in self.stations.iter_mut().zip(demands) {
                s.demand = d;
            }
            self.refresh_kinds();
            obsv::counter("conv.workspace.rebuild", 1);
            self.reset();
        }
        while self.n < n {
            self.extend_one()?;
        }
        self.compute_outputs(n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::scratch;
    use super::*;
    use mvasd_numerics::propcheck::{check, Config, Gen};

    fn st(name: &str, demand: f64, rate: RateFunction) -> ConvStation {
        ConvStation {
            name: name.into(),
            demand,
            rate,
        }
    }

    fn ws_of(stations: &[ConvStation], z: f64, limits: &[usize]) -> ConvWorkspace {
        ConvWorkspace::from_conv(stations.to_vec(), z, limits.to_vec()).unwrap()
    }

    fn rel_close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    /// Workspace vs the from-scratch reference on a fixed mixed network.
    #[test]
    fn agrees_with_scratch_reference() {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
            st("lan", 0.005, RateFunction::Delay),
            st("ghost", 0.0, RateFunction::SingleServer),
        ];
        let limits = [4usize, 1, 0, 0];
        let mut ws = ws_of(&stations, 0.7, &limits);
        for n in 1..=150usize {
            ws.advance().unwrap();
            let (x, q, m) = scratch::solve_at(&stations, 0.7, n, &limits).unwrap();
            assert!(rel_close(ws.throughput(), x, 1e-12), "x at n={n}");
            for (k, &qk) in q.iter().enumerate() {
                assert!(rel_close(ws.queues()[k], qk, 1e-11), "q[{k}] at n={n}");
            }
            for (j, &mv) in m[0].iter().enumerate() {
                assert!((ws.marginals_of(0)[j] - mv).abs() <= 1e-12, "m0[{j}] n={n}");
            }
            assert!((ws.marginals_of(1)[0] - m[1][0]).abs() <= 1e-12, "m1 n={n}");
        }
    }

    /// An incrementally-extended workspace and a fresh one at each
    /// population produce bit-identical outputs (same code, same order).
    #[test]
    fn incremental_is_bitwise_identical_to_fresh() {
        let stations = vec![
            st("cpu", 0.02, RateFunction::MultiServer(16)),
            st("disk", 0.012, RateFunction::SingleServer),
            st("lan", 0.004, RateFunction::Delay),
        ];
        let mut carried = ws_of(&stations, 1.0, &[0, 0, 0]);
        for n in 1..=80usize {
            carried.advance().unwrap();
            let mut fresh = ws_of(&stations, 1.0, &[0, 0, 0]);
            for _ in 0..n {
                fresh.advance().unwrap();
            }
            assert_eq!(carried.throughput().to_bits(), fresh.throughput().to_bits());
            for k in 0..3 {
                assert_eq!(carried.queues()[k].to_bits(), fresh.queues()[k].to_bits());
            }
        }
    }

    /// Revisiting a lower population is a pure read-back of the same cells.
    #[test]
    fn decreasing_population_reads_back_identical_values() {
        let stations = vec![
            st("cpu", 0.03, RateFunction::MultiServer(4)),
            st("disk", 0.01, RateFunction::SingleServer),
        ];
        let demands = [0.03, 0.01];
        let mut ws = ws_of(&stations, 1.0, &[4, 0]);
        let mut seen: Vec<(u64, u64, u64)> = Vec::new();
        for n in 1..=60usize {
            ws.solve_at(n, &demands).unwrap();
            seen.push((
                ws.throughput().to_bits(),
                ws.queues()[0].to_bits(),
                ws.marginals_of(0)[1].to_bits(),
            ));
        }
        for n in (1..=60usize).rev() {
            ws.solve_at(n, &demands).unwrap();
            let now = (
                ws.throughput().to_bits(),
                ws.queues()[0].to_bits(),
                ws.marginals_of(0)[1].to_bits(),
            );
            assert_eq!(now, seen[n - 1], "read-back at n={n}");
        }
    }

    /// A demand change rebuilds in place; the result must be bit-identical
    /// to a fresh workspace built with the new demands.
    #[test]
    fn demand_change_rebuild_matches_fresh_workspace() {
        let base = vec![
            st("cpu", 0.02, RateFunction::MultiServer(8)),
            st("disk", 0.008, RateFunction::SingleServer),
            st("lan", 0.003, RateFunction::Delay),
        ];
        let mut ws = ws_of(&base, 0.5, &[8, 0, 0]);
        // Warm it on the original demands first.
        ws.solve_at(40, &[0.02, 0.008, 0.003]).unwrap();
        for (i, scale) in [1.1f64, 0.7, 1.0, 0.0].iter().enumerate() {
            let demands = [0.02 * scale, 0.008 * scale, 0.003 * scale];
            let n = 25 + i;
            ws.solve_at(n, &demands).unwrap();
            let mut fresh_sts = base.clone();
            for (s, &d) in fresh_sts.iter_mut().zip(&demands) {
                s.demand = d;
            }
            let mut fresh = ws_of(&fresh_sts, 0.5, &[8, 0, 0]);
            fresh.solve_at(n, &demands).unwrap();
            assert_eq!(ws.throughput().to_bits(), fresh.throughput().to_bits());
            for k in 0..3 {
                assert_eq!(ws.queues()[k].to_bits(), fresh.queues()[k].to_bits());
            }
            for j in 0..8 {
                assert_eq!(
                    ws.marginals_of(0)[j].to_bits(),
                    fresh.marginals_of(0)[j].to_bits()
                );
            }
        }
    }

    /// The light single-server path (telescoped queue accumulator, no
    /// G₍₋ₖ₎) agrees with the closed-form machine-repair model.
    #[test]
    fn light_single_server_matches_machine_repair() {
        let stations = vec![st("s", 0.25, RateFunction::SingleServer)];
        let mut ws = ws_of(&stations, 1.0, &[0]);
        for n in 1..=200usize {
            ws.advance().unwrap();
            let (xe, qe) = mvasd_numerics::erlang::machine_repair(n, 1, 0.25, 1.0).unwrap();
            assert!(rel_close(ws.throughput(), xe, 1e-9), "x at n={n}");
            assert!(rel_close(ws.queues()[0], qe, 1e-8), "q at n={n}");
        }
    }

    /// Satellite 2: incremental-workspace `solve_at` ≡ from-scratch
    /// `solve_at` to 1e-12 across random mixed networks with random
    /// marginal limits, under a random schedule of population jumps
    /// (up, down, and demand changes) against ONE reused workspace.
    #[test]
    fn propcheck_workspace_equals_scratch_on_random_networks() {
        check(
            "propcheck_workspace_equals_scratch_on_random_networks",
            &Config::default().cases(24),
            |g: &mut Gen| {
                let k_count = g.usize_in(1, 4);
                let mut stations = Vec::new();
                let mut limits = Vec::new();
                for i in 0..k_count {
                    let rate = match g.usize_in(0, 3) {
                        0 => RateFunction::SingleServer,
                        1 => RateFunction::MultiServer(g.usize_in(2, 8)),
                        2 => RateFunction::Delay,
                        _ => {
                            let len = g.usize_in(1, 4);
                            RateFunction::Custom(
                                (0..len)
                                    .map(|j| 1.0 + j as f64 * g.f64_in(0.1, 1.0))
                                    .collect(),
                            )
                        }
                    };
                    let limit = match &rate {
                        RateFunction::MultiServer(c) if g.bool() => *c,
                        _ => {
                            if g.bool() {
                                g.usize_in(0, 3)
                            } else {
                                0
                            }
                        }
                    };
                    stations.push(st(&format!("s{i}"), g.f64_in(0.001, 0.2), rate));
                    limits.push(limit);
                }
                let z = g.f64_in(0.0, 2.0);
                if z <= 0.0 && stations.iter().all(|s| s.demand <= 0.0) {
                    return;
                }
                let mut ws = ConvWorkspace::from_conv(stations.clone(), z, limits.clone())
                    .expect("valid network");

                // A random walk of population requests over one workspace:
                // increasing, decreasing, and demand-perturbed steps.
                let mut demands: Vec<f64> = stations.iter().map(|s| s.demand).collect();
                for _ in 0..g.usize_in(3, 8) {
                    if g.bool() {
                        let k = g.usize_in(0, k_count - 1);
                        demands[k] = g.f64_in(0.001, 0.2);
                    }
                    let n = g.usize_in(1, 40);
                    ws.solve_at(n, &demands).unwrap();

                    let mut ref_sts = stations.clone();
                    for (s, &d) in ref_sts.iter_mut().zip(&demands) {
                        s.demand = d;
                    }
                    let (x, q, m) = scratch::solve_at(&ref_sts, z, n, &limits).unwrap();
                    assert!(
                        rel_close(ws.throughput(), x, 1e-12),
                        "x: {} vs {x} at n={n}",
                        ws.throughput()
                    );
                    for k in 0..k_count {
                        assert!(
                            rel_close(ws.queues()[k], q[k], 1e-11),
                            "q[{k}]: {} vs {} at n={n}",
                            ws.queues()[k],
                            q[k]
                        );
                        for (j, &mv) in m[k].iter().enumerate() {
                            assert!(
                                (ws.marginals_of(k)[j] - mv).abs() <= 1e-12,
                                "marginal[{k}][{j}] at n={n}"
                            );
                        }
                    }
                }
            },
        );
    }

    #[test]
    fn growth_preserves_carried_columns() {
        let stations = vec![
            st("cpu", 0.05, RateFunction::MultiServer(4)),
            st("disk", 0.02, RateFunction::SingleServer),
        ];
        // Tiny initial capacity (64), then force several regrowths.
        let mut ws = ws_of(&stations, 1.0, &[4, 0]);
        let mut fresh = ws_of(&stations, 1.0, &[4, 0]);
        fresh.reserve(600);
        for _ in 0..600 {
            ws.advance().unwrap();
            fresh.advance().unwrap();
        }
        assert_eq!(ws.throughput().to_bits(), fresh.throughput().to_bits());
        assert_eq!(ws.queues()[0].to_bits(), fresh.queues()[0].to_bits());
        assert_eq!(ws.queues()[1].to_bits(), fresh.queues()[1].to_bits());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(matches!(
            ConvWorkspace::from_conv(Vec::new(), 1.0, Vec::new()),
            Err(QueueingError::EmptyNetwork)
        ));
        let stations = vec![st("s", 0.1, RateFunction::SingleServer)];
        let mut ws = ws_of(&stations, 1.0, &[0]);
        assert!(ws.solve_at(0, &[0.1]).is_err());
        assert!(ws.solve_at(5, &[0.1, 0.2]).is_err());
        assert!(ws.solve_at(5, &[0.1]).is_ok());
    }

    #[test]
    fn public_face_validates_stations() {
        let good = [LdStation::new("s", 0.1, RateFunction::SingleServer)];
        let mut ws = ConvWorkspace::new(&good, 1.0, &[0]).unwrap();
        ws.advance().unwrap();
        assert!(ws.throughput() > 0.0);
        let bad = [LdStation::new("s", f64::NAN, RateFunction::SingleServer)];
        assert!(ConvWorkspace::new(&bad, 1.0, &[0]).is_err());
    }

    #[test]
    fn emits_workspace_metrics() {
        let _guard = mvasd_obsv_test_lock();
        let collector = std::sync::Arc::new(obsv::Collector::new());
        let scope = obsv::scoped(collector.clone());
        let stations = vec![st("s", 0.1, RateFunction::SingleServer)];
        let mut ws = ws_of(&stations, 1.0, &[0]);
        for _ in 0..10 {
            ws.advance().unwrap();
        }
        ws.solve_at(5, &[0.2]).unwrap();
        ws.flush_metrics();
        let snap = collector.snapshot();
        drop(scope);
        // 10 incremental advances + 5 rebuild extensions.
        assert_eq!(snap.counter("conv.workspace.extend"), 15);
        assert_eq!(snap.counter("conv.workspace.rebuild"), 1);
        assert!(snap.counter("conv.workspace.alloc") >= 1);
        assert!(snap.gauge("conv.workspace.bytes").unwrap_or(0.0) > 0.0);
        // Numeric-health probe: one ln G watched per extension, no NaN
        // reads, and a nonzero log-sum-exp envelope.
        assert_eq!(snap.counter("health.conv.lse.samples"), 15);
        assert_eq!(snap.counter("health.conv.lse.nan_poison"), 0);
        let lo = snap.gauge("health.conv.lse.lo").expect("lse lo");
        let hi = snap.gauge("health.conv.lse.hi").expect("lse hi");
        let range = snap.gauge("health.conv.lse.range").expect("lse range");
        assert!(hi >= lo);
        assert!((range - (hi - lo)).abs() < 1e-12);
        assert!(range > 0.0);
    }

    /// Serializes against other tests touching the global recorder.
    fn mvasd_obsv_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}
