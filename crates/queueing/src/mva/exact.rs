//! Exact single-server MVA — paper Algorithm 1 (Reiser & Lavenberg).
//!
//! The classic recursion: starting from an empty network, add one customer
//! at a time; with `n` customers the arriving customer sees the steady-state
//! queue lengths of the `n − 1` customer network (the Arrival Theorem), so
//!
//! ```text
//! R_k(n) = S_k · (1 + Q_k(n−1))          (paper eq. 8)
//! X(n)   = n / (Σ_k V_k R_k(n) + Z)      (Little)
//! Q_k(n) = X(n) · V_k · R_k(n)           (Little per queue)
//! ```
//!
//! Multi-server stations are **not** handled here (that is Algorithm 2 /
//! [`super::multiserver_mva`]); if the network contains one, the
//! conventional heuristic of normalizing the service demand by the core
//! count can be applied by the caller — the paper's "MVASD: Single-Server"
//! baseline does exactly that and is shown to underperform.

use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;
use mvasd_obsv as obsv;

use super::stepping::{MvaPoint, SolverIter};
use super::{MvaSolution, StationPoint};

/// The exact single-server MVA recursion as a resumable iterator: the
/// carried state is exactly the queue-length vector `Q_k(n)` of the
/// Arrival Theorem.
#[derive(Debug, Clone)]
pub struct ExactMvaIter {
    net: ClosedNetwork,
    names: std::sync::Arc<[String]>,
    /// `Q_k` at the last yielded population.
    q: Vec<f64>,
    n: usize,
}

impl ExactMvaIter {
    /// Starts a fresh recursion at population 0.
    pub fn new(net: ClosedNetwork) -> Self {
        let names = net
            .stations()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .into();
        let q = vec![0.0f64; net.stations().len()];
        Self {
            net,
            names,
            q,
            n: 0,
        }
    }
}

impl SolverIter for ExactMvaIter {
    fn station_names(&self) -> &[String] {
        &self.names
    }

    fn shared_names(&self) -> std::sync::Arc<[String]> {
        self.names.clone()
    }

    fn population(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> Result<MvaPoint, QueueingError> {
        let _span = obsv::span("exact-mva.step");
        obsv::counter("solver.steps", 1);
        let n = self.n + 1;
        let stations = self.net.stations();
        let k_count = stations.len();
        let z = self.net.think_time();

        // Residence time per interaction at each station.
        let mut residence = vec![0.0f64; k_count];
        for (k, s) in stations.iter().enumerate() {
            let d = s.demand();
            // Algorithm 1 ignores declared core counts and rate tables by
            // design: every non-delay station is a single-server queue.
            residence[k] = match &s.kind {
                StationKind::Delay => d,
                StationKind::Queueing { .. } | StationKind::LoadDependent { .. } => {
                    d * (1.0 + self.q[k])
                }
            };
        }
        let r_total: f64 = residence.iter().sum();
        let x = n as f64 / (r_total + z);
        for (qk, rk) in self.q.iter_mut().zip(&residence) {
            *qk = x * rk;
        }

        let station_points = stations
            .iter()
            .enumerate()
            .map(|(k, s)| StationPoint {
                queue: self.q[k],
                residence: residence[k],
                // All kinds share the single-server traffic-intensity form
                // here (see the residence computation above).
                utilization: x * s.demand(),
            })
            .collect();

        self.n = n;
        Ok(MvaPoint {
            n,
            throughput: x,
            response: r_total,
            cycle_time: r_total + z,
            stations: station_points,
        })
    }

    fn boxed_clone(&self) -> Box<dyn SolverIter> {
        Box::new(self.clone())
    }
}

/// Runs exact single-server MVA up to population `n_max` (a drain of
/// [`ExactMvaIter`]). `n_max = 0` yields an empty solution.
///
/// Delay stations contribute their demand without queueing. Queueing
/// stations are treated as single-server regardless of their declared core
/// count (see module docs); use [`super::multiserver_mva`] when server
/// counts matter.
pub fn exact_mva(net: &ClosedNetwork, n_max: usize) -> Result<MvaSolution, QueueingError> {
    ExactMvaIter::new(net.clone()).drain(n_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{response_bounds, throughput_bounds};
    use crate::network::Station;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn simple_net(z: f64) -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.005),
                Station::queueing("disk", 1, 1.0, 0.010),
            ],
            z,
        )
        .unwrap()
    }

    #[test]
    fn one_customer_sees_raw_demands() {
        let net = simple_net(1.0);
        let sol = exact_mva(&net, 1).unwrap();
        let p = sol.at(1).unwrap();
        assert!(close(p.response, 0.015, 1e-12));
        assert!(close(p.throughput, 1.0 / 1.015, 1e-12));
    }

    #[test]
    fn littles_law_holds_at_every_population() {
        let net = simple_net(0.5);
        let sol = exact_mva(&net, 50).unwrap();
        for p in &sol.points {
            // N = X (R + Z)
            assert!(
                close(p.n as f64, p.throughput * p.cycle_time, 1e-9),
                "n={}",
                p.n
            );
            // Per-queue Little: Q_k = X * residence_k.
            for sp in &p.stations {
                assert!(close(sp.queue, p.throughput * sp.residence, 1e-9));
            }
            // Population conservation: queues + thinking = N.
            let in_system: f64 = p.stations.iter().map(|s| s.queue).sum();
            let thinking = p.throughput * 0.5;
            assert!(close(in_system + thinking, p.n as f64, 1e-9));
        }
    }

    #[test]
    fn throughput_monotone_and_bounded() {
        let net = simple_net(1.0);
        let sol = exact_mva(&net, 300).unwrap();
        let xs = sol.throughputs();
        for w in xs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "throughput must be non-decreasing");
        }
        for (i, p) in sol.points.iter().enumerate() {
            let b = throughput_bounds(&net, i + 1);
            assert!(p.throughput <= b.upper + 1e-9);
            assert!(p.throughput >= b.lower - 1e-9);
            let rb = response_bounds(&net, i + 1);
            assert!(p.response >= rb.lower - 1e-9);
            assert!(p.response <= rb.upper + 1e-9);
        }
        // Saturation: X -> 1/Dmax = 100.
        assert!(sol.last().throughput > 99.0);
    }

    #[test]
    fn matches_machine_repair_closed_form() {
        // Single queueing station + think time = machine repair with c = 1.
        let net = ClosedNetwork::new(vec![Station::queueing("st", 1, 1.0, 0.25)], 1.0).unwrap();
        let sol = exact_mva(&net, 20).unwrap();
        for n in 1..=20usize {
            let (x_exact, q_exact) =
                mvasd_numerics::erlang::machine_repair(n, 1, 0.25, 1.0).unwrap();
            let p = sol.at(n).unwrap();
            assert!(close(p.throughput, x_exact, 1e-9), "n={n}");
            assert!(close(p.stations[0].queue, q_exact, 1e-9), "n={n}");
        }
    }

    #[test]
    fn delay_station_never_queues() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 1, 1.0, 0.01),
                Station::delay("lan", 1.0, 0.002),
            ],
            0.1,
        )
        .unwrap();
        let sol = exact_mva(&net, 100).unwrap();
        for p in &sol.points {
            // Residence at the delay station is always its raw demand.
            assert!(close(p.stations[1].residence, 0.002, 1e-12));
        }
    }

    #[test]
    fn visits_scale_demand() {
        // 7 visits of 1 ms ≡ 1 visit of 7 ms.
        let a = ClosedNetwork::new(vec![Station::queueing("s", 1, 7.0, 0.001)], 1.0).unwrap();
        let b = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.007)], 1.0).unwrap();
        let sa = exact_mva(&a, 40).unwrap();
        let sb = exact_mva(&b, 40).unwrap();
        for (pa, pb) in sa.points.iter().zip(sb.points.iter()) {
            assert!(close(pa.throughput, pb.throughput, 1e-12));
            assert!(close(pa.response, pb.response, 1e-12));
        }
    }

    #[test]
    fn zero_population_yields_empty_solution() {
        let net = simple_net(1.0);
        let sol = exact_mva(&net, 0).unwrap();
        assert!(sol.points.is_empty());
        assert_eq!(
            &sol.station_names[..],
            &["cpu".to_string(), "disk".to_string()][..]
        );
    }

    #[test]
    fn utilization_below_one_at_single_server() {
        let net = simple_net(1.0);
        let sol = exact_mva(&net, 500).unwrap();
        for p in &sol.points {
            for sp in &p.stations {
                assert!(sp.utilization <= 1.0 + 1e-9);
            }
        }
        // Bottleneck (disk) utilization approaches 1.
        assert!(sol.last().stations[1].utilization > 0.99);
    }
}
