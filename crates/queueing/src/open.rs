//! Open (Jackson-style) network analysis.
//!
//! Section 7 of the paper notes that modelling service demand against
//! *throughput* "may be useful for open systems where throughput can be
//! modified much easier rather than increasing the concurrency". This module
//! provides the open-system counterpart of the closed solvers: each tier is
//! an M/M/C_k station visited `V_k` times per transaction, driven by a
//! Poisson transaction stream of rate `λ`. By Jackson's theorem the stations
//! decouple, so each is solved with the Erlang-C closed forms from
//! `mvasd-numerics`.

use crate::network::{ClosedNetwork, StationKind};
use crate::QueueingError;
use mvasd_numerics::erlang::mmc;

/// Per-station open-model metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenStationMetrics {
    /// Station name.
    pub name: String,
    /// Per-server utilization.
    pub utilization: f64,
    /// Mean residence time per transaction, `V_k · W_k`.
    pub residence: f64,
    /// Mean number of customers at the station.
    pub queue: f64,
}

/// Open-network solution at arrival rate `λ`.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSolution {
    /// Transaction arrival rate analyzed.
    pub lambda: f64,
    /// End-to-end mean response time per transaction.
    pub response: f64,
    /// Mean number of transactions in the system (Little).
    pub number_in_system: f64,
    /// Per-station metrics.
    pub stations: Vec<OpenStationMetrics>,
}

/// Solves the open version of `net` at transaction arrival rate `lambda`.
///
/// The think-time stage of the closed model has no meaning in an open
/// system and is ignored. Errors with [`QueueingError::Unstable`] if any
/// station would saturate (`λ·D_k ≥ C_k`).
pub fn solve_open(net: &ClosedNetwork, lambda: f64) -> Result<OpenSolution, QueueingError> {
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(QueueingError::InvalidParameter {
            what: "lambda must be finite and > 0",
        });
    }
    let mut response = 0.0;
    let mut stations = Vec::with_capacity(net.stations().len());
    for s in net.stations() {
        let d = s.demand();
        // lint: float-eq-ok zero demand is the exact input sentinel for "station not visited"
        if d == 0.0 {
            stations.push(OpenStationMetrics {
                name: s.name.clone(),
                utilization: 0.0,
                residence: 0.0,
                queue: 0.0,
            });
            continue;
        }
        let metrics = match &s.kind {
            StationKind::Delay => OpenStationMetrics {
                name: s.name.clone(),
                utilization: lambda * d,
                residence: d,
                queue: lambda * d,
            },
            StationKind::Queueing { servers } => {
                // Station-level arrival rate λ_k = λ·V_k; per-visit service
                // time S_k. Stability: λ·D_k < C_k.
                if lambda * d >= *servers as f64 {
                    return Err(QueueingError::Unstable {
                        station: s.name.clone(),
                    });
                }
                let lam_k = lambda * s.visits;
                let m = mmc(*servers, lam_k, 1.0 / s.service_time)?;
                OpenStationMetrics {
                    name: s.name.clone(),
                    utilization: m.utilization,
                    residence: s.visits * m.sojourn,
                    queue: m.num_in_system,
                }
            }
            // Jackson decomposition here is M/M/C-based; an arbitrary rate
            // table has no matching closed form.
            StationKind::LoadDependent { .. } => {
                return Err(QueueingError::InvalidParameter {
                    what: "open model does not support load-dependent stations",
                })
            }
        };
        response += metrics.residence;
        stations.push(metrics);
    }
    Ok(OpenSolution {
        lambda,
        response,
        number_in_system: lambda * response,
        stations,
    })
}

/// Sweeps arrival rate from `lambda_lo` to just below saturation in `steps`
/// points, returning the response-time curve `(λ, R)`. Stops early at the
/// first unstable point.
pub fn response_curve(
    net: &ClosedNetwork,
    lambda_lo: f64,
    lambda_hi: f64,
    steps: usize,
) -> Result<Vec<(f64, f64)>, QueueingError> {
    if steps < 2 || lambda_lo <= 0.0 || lambda_hi <= lambda_lo || !lambda_lo.is_finite() {
        return Err(QueueingError::InvalidParameter {
            what: "need steps >= 2 and 0 < lambda_lo < lambda_hi",
        });
    }
    let mut pts = Vec::with_capacity(steps);
    for i in 0..steps {
        let lam = lambda_lo + (lambda_hi - lambda_lo) * i as f64 / (steps - 1) as f64;
        match solve_open(net, lam) {
            Ok(sol) => pts.push((lam, sol.response)),
            Err(QueueingError::Unstable { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Station;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu", 4, 1.0, 0.02),
                Station::queueing("disk", 1, 1.0, 0.01),
                Station::delay("lan", 1.0, 0.002),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn low_load_response_is_sum_of_demands() {
        let sol = solve_open(&net(), 0.001).unwrap();
        assert!(close(sol.response, 0.032, 1e-3));
    }

    #[test]
    fn littles_law() {
        let sol = solve_open(&net(), 30.0).unwrap();
        assert!(close(sol.number_in_system, 30.0 * sol.response, 1e-12));
    }

    #[test]
    fn mm1_station_matches_closed_form() {
        let n = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.01)], 0.0).unwrap();
        let sol = solve_open(&n, 50.0).unwrap();
        // M/M/1 with rho = 0.5: W = S/(1-rho) = 0.02.
        assert!(close(sol.response, 0.02, 1e-12));
        assert!(close(sol.stations[0].utilization, 0.5, 1e-12));
    }

    #[test]
    fn saturation_detected() {
        let n = net();
        // disk saturates at lambda = 100.
        assert!(matches!(
            solve_open(&n, 100.0),
            Err(QueueingError::Unstable { .. })
        ));
        assert!(solve_open(&n, 99.0).is_ok());
    }

    #[test]
    fn response_grows_with_load() {
        let n = net();
        let curve = response_curve(&n, 1.0, 99.0, 20).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn visits_only_demand_matters_in_mm1() {
        // 7 visits of 1 ms vs 1 visit of 7 ms: same demand => same
        // utilization, and in M/M/1 the residence V·W = D/(1−ρ) depends on
        // the demand only, so the responses coincide too.
        let a = ClosedNetwork::new(vec![Station::queueing("s", 1, 7.0, 0.001)], 0.0).unwrap();
        let b = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.007)], 0.0).unwrap();
        let sa = solve_open(&a, 100.0).unwrap();
        let sb = solve_open(&b, 100.0).unwrap();
        assert!(close(
            sa.stations[0].utilization,
            sb.stations[0].utilization,
            1e-12
        ));
        assert!(close(sa.response, sb.response, 1e-12));
    }

    #[test]
    fn rejects_bad_lambda_and_sweep_args() {
        let n = net();
        assert!(solve_open(&n, 0.0).is_err());
        assert!(solve_open(&n, f64::NAN).is_err());
        assert!(response_curve(&n, 1.0, 0.5, 10).is_err());
        assert!(response_curve(&n, 1.0, 10.0, 1).is_err());
    }

    #[test]
    fn sweep_stops_at_saturation() {
        let n = net();
        let curve = response_curve(&n, 50.0, 200.0, 16).unwrap();
        assert!(!curve.is_empty());
        assert!(curve.last().unwrap().0 < 100.0);
    }
}
