//! Operational laws — paper Section 3 (Table 1 notation).
//!
//! These are measurement identities, not stochastic assumptions: they hold
//! for any observation window in which flow is balanced. They are used both
//! by the analytic solvers and by the testbed's demand-extraction pipeline
//! (which applies the Service Demand Law to monitored utilizations exactly
//! as the paper does with vmstat/iostat/netstat data).

/// Utilization Law (paper eq. 1): `Uᵢ = Xᵢ · Sᵢ`.
///
/// `throughput` is the station's completion rate `Xᵢ`, `service_time` the
/// mean service time per visit `Sᵢ`.
pub fn utilization(throughput: f64, service_time: f64) -> f64 {
    throughput * service_time
}

/// Forced Flow Law (paper eq. 2): `Xᵢ = Vᵢ · X`.
pub fn station_throughput(system_throughput: f64, visits: f64) -> f64 {
    system_throughput * visits
}

/// Service Demand Law (paper eq. 3): `Dᵢ = Vᵢ · Sᵢ = Uᵢ / X`.
///
/// This is the form used to *extract* demands from measurements: monitored
/// utilization divided by measured system throughput. Returns `None` when
/// throughput is zero (no completions observed — demand undefined).
pub fn service_demand_from_utilization(utilization: f64, system_throughput: f64) -> Option<f64> {
    if system_throughput <= 0.0 {
        None
    } else {
        Some(utilization / system_throughput)
    }
}

/// Little's Law (paper eq. 4) solved for throughput: `X = N / (R + Z)`.
///
/// Returns `None` if `R + Z` is non-positive.
pub fn throughput_from_little(n: f64, response: f64, think: f64) -> Option<f64> {
    let cycle = response + think;
    if cycle <= 0.0 {
        None
    } else {
        Some(n / cycle)
    }
}

/// Little's Law solved for response time: `R = N/X − Z`.
///
/// Returns `None` for non-positive throughput.
pub fn response_from_little(n: f64, throughput: f64, think: f64) -> Option<f64> {
    if throughput <= 0.0 {
        None
    } else {
        Some(n / throughput - think)
    }
}

/// Little's Law applied to a single queue: `Qᵢ = Xᵢ · Rᵢ`.
pub fn queue_length(station_throughput: f64, residence_time: f64) -> f64 {
    station_throughput * residence_time
}

/// Bottleneck Law (paper eq. 5): `X ≤ 1 / D_max`.
///
/// Returns the throughput ceiling given per-station service demands; `None`
/// for an empty demand set. For multi-server stations pass the *effective*
/// demand `Dᵢ/Cᵢ` — a `C`-server station saturates at `C/Dᵢ`.
pub fn throughput_bound(demands: &[f64]) -> Option<f64> {
    let d_max = demands.iter().cloned().fold(f64::NAN, f64::max);
    if d_max.is_nan() || d_max <= 0.0 {
        None
    } else {
        Some(1.0 / d_max)
    }
}

/// Minimum response-time bound from the Bottleneck Law (paper eq. 6):
/// `R ≥ N · D_max − Z` (the high-population asymptote), combined with the
/// low-population floor `R ≥ Σ Dᵢ`.
pub fn response_lower_bound(n: f64, demands: &[f64], think: f64) -> Option<f64> {
    let d_max = demands.iter().cloned().fold(f64::NAN, f64::max);
    if d_max.is_nan() || d_max <= 0.0 {
        return None;
    }
    let d_total: f64 = demands.iter().sum();
    Some(d_total.max(n * d_max - think))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn utilization_law() {
        assert!(close(utilization(50.0, 0.01), 0.5, 1e-12));
    }

    #[test]
    fn forced_flow_law() {
        // 7 pages per transaction at 10 tx/s => 70 page visits/s.
        assert!(close(station_throughput(10.0, 7.0), 70.0, 1e-12));
    }

    #[test]
    fn service_demand_law_roundtrip() {
        // U = X * D must invert exactly.
        let x = 42.0;
        let d = 0.0123;
        let u = utilization(x, d);
        assert!(close(
            service_demand_from_utilization(u, x).unwrap(),
            d,
            1e-12
        ));
        assert!(service_demand_from_utilization(0.5, 0.0).is_none());
    }

    #[test]
    fn littles_law_consistency() {
        let (n, r, z) = (100.0, 0.25, 1.0);
        let x = throughput_from_little(n, r, z).unwrap();
        assert!(close(x, 80.0, 1e-12));
        assert!(close(response_from_little(n, x, z).unwrap(), r, 1e-12));
        assert!(throughput_from_little(n, -2.0, 1.0).is_none());
        assert!(response_from_little(n, 0.0, 1.0).is_none());
    }

    #[test]
    fn queue_little() {
        assert!(close(queue_length(80.0, 0.05), 4.0, 1e-12));
    }

    #[test]
    fn bottleneck_bound() {
        // D_max = 0.02 => X <= 50.
        assert!(close(
            throughput_bound(&[0.01, 0.02, 0.005]).unwrap(),
            50.0,
            1e-12
        ));
        assert!(throughput_bound(&[]).is_none());
        assert!(throughput_bound(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn response_bound_two_regimes() {
        let demands = [0.01, 0.02, 0.005];
        // Low population: sum of demands dominates.
        assert!(close(
            response_lower_bound(1.0, &demands, 1.0).unwrap(),
            0.035,
            1e-12
        ));
        // High population: N*Dmax - Z dominates.
        assert!(close(
            response_lower_bound(1000.0, &demands, 1.0).unwrap(),
            1000.0 * 0.02 - 1.0,
            1e-12
        ));
        assert!(response_lower_bound(10.0, &[], 1.0).is_none());
    }
}
