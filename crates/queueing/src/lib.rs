//! # mvasd-queueing
//!
//! Closed/open queueing-network analysis for multi-tiered web applications:
//! the analytic machinery of Sections 3 and 5 of the paper.
//!
//! * [`laws`] — the operational laws of paper Section 3 (Utilization, Forced
//!   Flow, Service Demand, Little's, Bottleneck).
//! * [`network`] — the closed queueing-network model of paper Fig. 2:
//!   multi-server queueing stations (multi-core CPUs, disks, NICs) plus a
//!   think-time delay stage.
//! * [`bounds`] — asymptotic and balanced-job bounds on throughput/response.
//! * [`mva`] — the Mean Value Analysis family:
//!   [`mva::exact_mva`] (paper Algorithm 1), [`mva::schweitzer_mva`]
//!   (eq. 9, with the Seidmann multi-server transform), and
//!   [`mva::multiserver_mva`] (paper Algorithm 2) together with
//!   [`mva::load_dependent_mva`] — both evaluated through Buzen's
//!   normalization-constant algorithm in log-domain, the numerically
//!   robust exact form (the naive marginal recursion diverges near
//!   multi-server saturation; see the `multiserver` module docs). The
//!   shared stepping engine [`mva::PopulationRecursion`] powers MVASD, and
//!   [`mva::multiclass_mva`] adds the exact multiclass extension. All of
//!   them (and the MVASD variants and simulation estimator downstream) are
//!   callable through the unified [`mva::ClosedSolver`] trait, which makes
//!   solver backends one-line swaps in comparison pipelines.
//! * [`open`] — open Jackson-network analysis (M/M/c tiers) for
//!   cross-validation and for the "open systems" discussion of Section 7.
//! * [`hierarchy`] — Norton flow-equivalent-server aggregation: tiered
//!   topologies expressed as trees of subsystems, each solved in isolation
//!   and replaced by a load-dependent station in its parent, with exact
//!   disaggregation back onto the flat stations. Scales the paper's
//!   twelve-station VINS shape to microservice-size estates.
//!
//! The crate deliberately contains **no** varying-service-demand logic: that
//! is the paper's contribution and lives in `mvasd-core`, which builds on the
//! solvers here.
//!
//! ## Example: a 2-tier closed network
//!
//! ```
//! use mvasd_queueing::network::{ClosedNetwork, Station};
//! use mvasd_queueing::mva::multiserver_mva;
//!
//! let net = ClosedNetwork::new(
//!     vec![
//!         Station::queueing("app-cpu", 4, 1.0, 0.008), // 4 cores, D = 8 ms
//!         Station::queueing("db-disk", 1, 1.0, 0.012), // D = 12 ms
//!     ],
//!     1.0, // think time Z = 1 s
//! )
//! .unwrap();
//! let out = multiserver_mva(&net, 100).unwrap();
//! let last = out.last();
//! assert!(last.throughput <= 1.0 / 0.012 + 1e-9); // bottleneck law
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod hierarchy;
pub mod laws;
pub mod mva;
pub mod network;
pub mod open;

/// Errors from queueing-model construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueingError {
    /// A model parameter was outside its legal domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// The network has no stations.
    EmptyNetwork,
    /// An open model was driven beyond saturation.
    Unstable {
        /// Name of the saturated station.
        station: String,
    },
    /// Error propagated from the numerics layer.
    Numerics(mvasd_numerics::NumericsError),
}

impl core::fmt::Display for QueueingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueueingError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            QueueingError::EmptyNetwork => write!(f, "network has no stations"),
            QueueingError::Unstable { station } => {
                write!(f, "open network unstable: station '{station}' saturated")
            }
            QueueingError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for QueueingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueueingError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvasd_numerics::NumericsError> for QueueingError {
    fn from(e: mvasd_numerics::NumericsError) -> Self {
        QueueingError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let msgs = [
            QueueingError::InvalidParameter { what: "x" }.to_string(),
            QueueingError::EmptyNetwork.to_string(),
            QueueingError::Unstable {
                station: "db".into(),
            }
            .to_string(),
            QueueingError::Numerics(mvasd_numerics::NumericsError::SingularSystem).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn numerics_error_converts() {
        let e: QueueingError = mvasd_numerics::NumericsError::SingularSystem.into();
        assert!(matches!(e, QueueingError::Numerics(_)));
    }
}
