//! Property-based tests of the queueing solvers against operational-law
//! invariants and the independent closed forms.

use proptest::prelude::*;

use mvasd_numerics::erlang::machine_repair;
use mvasd_queueing::mva::{
    exact_mva, load_dependent_mva, multiclass_mva, multiserver_mva, ClassSpec, LdStation,
    RateFunction,
};
use mvasd_queueing::network::{ClosedNetwork, Station, StationKind};
use mvasd_queueing::open::solve_open;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn multiserver_mva_is_exact_for_machine_repair(
        c in 1usize..24,
        s in 0.01f64..2.0,
        z in 0.0f64..5.0,
        n in 1usize..120,
    ) {
        let net = ClosedNetwork::new(vec![Station::queueing("st", c, 1.0, s)], z).unwrap();
        let sol = multiserver_mva(&net, n).unwrap();
        let (xe, qe) = machine_repair(n, c, s, z).unwrap();
        let x = sol.last().throughput;
        prop_assert!((x - xe).abs() <= 1e-8 * xe.max(1e-9), "X {x} vs {xe}");
        let q = sol.last().stations[0].queue;
        prop_assert!((q - qe).abs() <= 1e-6 * qe.max(1.0), "Q {q} vs {qe}");
    }

    #[test]
    fn load_dependent_reduces_to_exact_for_single_servers(
        demands in proptest::collection::vec(0.001f64..0.1, 1..5),
        z in 0.0f64..3.0,
        n in 1usize..80,
    ) {
        let net = ClosedNetwork::new(
            demands.iter().enumerate()
                .map(|(i, &d)| Station::queueing(&format!("s{i}"), 1, 1.0, d))
                .collect(),
            z,
        ).unwrap();
        let ld_stations: Vec<LdStation> = demands.iter().enumerate()
            .map(|(i, &d)| LdStation::new(&format!("s{i}"), d, RateFunction::SingleServer))
            .collect();
        let a = exact_mva(&net, n).unwrap();
        let b = load_dependent_mva(&ld_stations, z, n).unwrap();
        for i in 1..=n {
            let (xa, xb) = (a.at(i).unwrap().throughput, b.at(i).unwrap().throughput);
            prop_assert!((xa - xb).abs() <= 1e-8 * xa.max(1e-9), "n={i}");
        }
    }

    #[test]
    fn split_class_equals_merged_class(
        demand in 0.001f64..0.1,
        z in 0.1f64..3.0,
        pop_a in 1usize..20,
        pop_b in 1usize..20,
    ) {
        // Two identical classes must behave exactly like one merged class.
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let class = |name: &str, pop: usize| ClassSpec {
            name: name.into(),
            population: pop,
            think_time: z,
            demands: vec![demand],
        };
        let split = multiclass_mva(&[class("a", pop_a), class("b", pop_b)], &kinds).unwrap();
        let merged = multiclass_mva(&[class("ab", pop_a + pop_b)], &kinds).unwrap();
        let x_split = split.classes[0].throughput + split.classes[1].throughput;
        let x_merged = merged.classes[0].throughput;
        prop_assert!((x_split - x_merged).abs() <= 1e-8 * x_merged);
        prop_assert!((split.station_queues[0] - merged.station_queues[0]).abs() <= 1e-6);
    }

    #[test]
    fn open_network_littles_law_and_monotonicity(
        cpu_d in 0.001f64..0.02,
        disk_d in 0.001f64..0.02,
        servers in 1usize..8,
    ) {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", servers, 1.0, cpu_d),
                Station::queueing("disk", 1, 1.0, disk_d),
            ],
            0.0,
        ).unwrap();
        let cap = (servers as f64 / cpu_d).min(1.0 / disk_d);
        let mut prev_r = 0.0;
        for i in 1..=5 {
            let lam = cap * 0.95 * i as f64 / 5.0;
            let sol = solve_open(&net, lam).unwrap();
            prop_assert!((sol.number_in_system - lam * sol.response).abs() < 1e-9);
            prop_assert!(sol.response >= prev_r - 1e-12, "R must rise with load");
            prev_r = sol.response;
            for st in &sol.stations {
                prop_assert!(st.utilization < 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn closed_throughput_caps_and_knee(
        demands in proptest::collection::vec((1usize..=16, 0.002f64..0.08), 2..6),
        z in 0.0f64..2.0,
    ) {
        let net = ClosedNetwork::new(
            demands.iter().enumerate()
                .map(|(i, &(c, d))| Station::queueing(&format!("s{i}"), c, 1.0, d))
                .collect(),
            z,
        ).unwrap();
        let n = (net.knee_population().ceil() as usize * 2).clamp(10, 400);
        let sol = multiserver_mva(&net, n).unwrap();
        // Far past the knee, throughput is within 25 % of the ceiling
        // (loose: the knee estimate ignores queueing spread).
        prop_assert!(sol.last().throughput <= net.max_throughput() + 1e-6);
        prop_assert!(sol.last().throughput >= 0.75 * net.max_throughput().min(n as f64 / (net.total_demand() + z)));
    }

    #[test]
    fn single_customer_sees_no_queueing(
        demands in proptest::collection::vec((1usize..=16, 0.002f64..0.08), 1..6),
        z in 0.0f64..2.0,
    ) {
        let net = ClosedNetwork::new(
            demands.iter().enumerate()
                .map(|(i, &(c, d))| Station::queueing(&format!("s{i}"), c, 1.0, d))
                .collect(),
            z,
        ).unwrap();
        let sol = multiserver_mva(&net, 1).unwrap();
        let d_total = net.total_demand();
        prop_assert!((sol.at(1).unwrap().response - d_total).abs() < 1e-8 * d_total.max(1e-9));
    }
}
