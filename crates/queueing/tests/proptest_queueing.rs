//! Property-based tests of the queueing solvers against operational-law
//! invariants and the independent closed forms.
//!
//! Runs on the in-house deterministic harness (`mvasd_numerics::propcheck`).

use mvasd_numerics::erlang::machine_repair;
use mvasd_numerics::propcheck::{check, Config, Gen};
use mvasd_queueing::mva::{
    exact_mva, load_dependent_mva, multiclass_mva, multiserver_mva, ClassSpec, LdStation,
    RateFunction,
};
use mvasd_queueing::network::{ClosedNetwork, Station, StationKind};
use mvasd_queueing::open::solve_open;

fn cfg() -> Config {
    Config::default().cases(40)
}

#[test]
fn multiserver_mva_is_exact_for_machine_repair() {
    check("multiserver_mva_is_exact_for_machine_repair", &cfg(), |g| {
        let c = g.usize_in(1, 23);
        let s = g.f64_in(0.01, 2.0);
        let z = g.f64_in(0.0, 5.0);
        let n = g.usize_in(1, 119);
        let net = ClosedNetwork::new(vec![Station::queueing("st", c, 1.0, s)], z).unwrap();
        let sol = multiserver_mva(&net, n).unwrap();
        let (xe, qe) = machine_repair(n, c, s, z).unwrap();
        let x = sol.last().throughput;
        assert!((x - xe).abs() <= 1e-8 * xe.max(1e-9), "X {x} vs {xe}");
        let q = sol.last().stations[0].queue;
        assert!((q - qe).abs() <= 1e-6 * qe.max(1.0), "Q {q} vs {qe}");
    });
}

#[test]
fn load_dependent_reduces_to_exact_for_single_servers() {
    check(
        "load_dependent_reduces_to_exact_for_single_servers",
        &cfg(),
        |g| {
            let demands = g.vec_f64(1, 4, 0.001, 0.1);
            let z = g.f64_in(0.0, 3.0);
            let n = g.usize_in(1, 79);
            let net = ClosedNetwork::new(
                demands
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| Station::queueing(&format!("s{i}"), 1, 1.0, d))
                    .collect(),
                z,
            )
            .unwrap();
            let ld_stations: Vec<LdStation> = demands
                .iter()
                .enumerate()
                .map(|(i, &d)| LdStation::new(&format!("s{i}"), d, RateFunction::SingleServer))
                .collect();
            let a = exact_mva(&net, n).unwrap();
            let b = load_dependent_mva(&ld_stations, z, n).unwrap();
            for i in 1..=n {
                let (xa, xb) = (a.at(i).unwrap().throughput, b.at(i).unwrap().throughput);
                assert!((xa - xb).abs() <= 1e-8 * xa.max(1e-9), "n={i}");
            }
        },
    );
}

#[test]
fn split_class_equals_merged_class() {
    // Two identical classes must behave exactly like one merged class.
    check("split_class_equals_merged_class", &cfg(), |g| {
        let demand = g.f64_in(0.001, 0.1);
        let z = g.f64_in(0.1, 3.0);
        let pop_a = g.usize_in(1, 19);
        let pop_b = g.usize_in(1, 19);
        let kinds = vec![StationKind::Queueing { servers: 1 }];
        let class = |name: &str, pop: usize| ClassSpec {
            name: name.into(),
            population: pop,
            think_time: z,
            demands: vec![demand],
        };
        let split = multiclass_mva(&[class("a", pop_a), class("b", pop_b)], &kinds).unwrap();
        let merged = multiclass_mva(&[class("ab", pop_a + pop_b)], &kinds).unwrap();
        let x_split = split.classes[0].throughput + split.classes[1].throughput;
        let x_merged = merged.classes[0].throughput;
        assert!((x_split - x_merged).abs() <= 1e-8 * x_merged);
        assert!((split.station_queues[0] - merged.station_queues[0]).abs() <= 1e-6);
    });
}

#[test]
fn open_network_littles_law_and_monotonicity() {
    check("open_network_littles_law_and_monotonicity", &cfg(), |g| {
        let cpu_d = g.f64_in(0.001, 0.02);
        let disk_d = g.f64_in(0.001, 0.02);
        let servers = g.usize_in(1, 7);
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu", servers, 1.0, cpu_d),
                Station::queueing("disk", 1, 1.0, disk_d),
            ],
            0.0,
        )
        .unwrap();
        let cap = (servers as f64 / cpu_d).min(1.0 / disk_d);
        let mut prev_r = 0.0;
        for i in 1..=5 {
            let lam = cap * 0.95 * i as f64 / 5.0;
            let sol = solve_open(&net, lam).unwrap();
            assert!((sol.number_in_system - lam * sol.response).abs() < 1e-9);
            assert!(sol.response >= prev_r - 1e-12, "R must rise with load");
            prev_r = sol.response;
            for st in &sol.stations {
                assert!(st.utilization < 1.0 + 1e-9);
            }
        }
    });
}

/// 2–5 multi-server stations with server counts in 1..=16.
fn gen_ms_net(g: &mut Gen, min_stations: usize, z_max: f64) -> ClosedNetwork {
    let count = g.usize_in(min_stations, 5);
    let stations = (0..count)
        .map(|i| {
            let c = g.usize_in(1, 16);
            let d = g.f64_in(0.002, 0.08);
            Station::queueing(&format!("s{i}"), c, 1.0, d)
        })
        .collect();
    let z = g.f64_in(0.0, z_max);
    ClosedNetwork::new(stations, z).unwrap()
}

#[test]
fn closed_throughput_caps_and_knee() {
    check("closed_throughput_caps_and_knee", &cfg(), |g| {
        let net = gen_ms_net(g, 2, 2.0);
        let z = net.think_time();
        let n = (net.knee_population().ceil() as usize * 2).clamp(10, 400);
        let sol = multiserver_mva(&net, n).unwrap();
        // Far past the knee, throughput is within 25 % of the ceiling
        // (loose: the knee estimate ignores queueing spread).
        assert!(sol.last().throughput <= net.max_throughput() + 1e-6);
        assert!(
            sol.last().throughput
                >= 0.75
                    * net
                        .max_throughput()
                        .min(n as f64 / (net.total_demand() + z))
        );
    });
}

#[test]
fn single_customer_sees_no_queueing() {
    check("single_customer_sees_no_queueing", &cfg(), |g| {
        let net = gen_ms_net(g, 1, 2.0);
        let sol = multiserver_mva(&net, 1).unwrap();
        let d_total = net.total_demand();
        assert!((sol.at(1).unwrap().response - d_total).abs() < 1e-8 * d_total.max(1e-9));
    });
}
