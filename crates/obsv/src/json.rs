//! A minimal recursive-descent JSON parser, std-only.
//!
//! Exists so CI and tests can validate the crate's own emitted JSON (Chrome
//! traces, JSONL, `BENCH_*.json`) without pulling in serde. Full RFC 8259
//! value grammar: objects, arrays, strings with escapes (including
//! `\uXXXX` surrogate pairs), numbers, booleans, null. Not streaming, not
//! fast — a validation tool, not a data path.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is normalized (sorted).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require \uXXXX low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a dot ("3"), which is valid
        // JSON but ambiguous for schema consumers; keep it that way — both
        // our parser and every real one accept it.
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("3.5e2").unwrap(), Json::Number(350.0));
        assert_eq!(parse("-0.25").unwrap(), Json::Number(-0.25));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": true}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn resolves_escapes_and_surrogates() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé😀"));
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "q\"uote",
            "back\\slash",
            "new\nline",
            "tab\t",
            "ctrl\u{1}",
            "é😀",
        ] {
            let encoded = format!("\"{}\"", escape(s));
            assert_eq!(parse(&encoded).unwrap().as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"\\x\"",
            "\"\\ud800\"",
            "[1] trailing",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        // Round-trip through the parser.
        assert_eq!(parse(&number(0.1)).unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
