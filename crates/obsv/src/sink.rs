//! Snapshot export formats: Chrome `trace_event` JSON, JSONL event
//! streams, and a plain-text summary table.
//!
//! All three are pure functions of a [`Snapshot`], so they can be called
//! repeatedly and mixed freely. The Chrome format targets the
//! [Trace Event Format] consumed by `chrome://tracing` and
//! <https://ui.perfetto.dev>; the JSONL stream is for ad-hoc `grep`/`jq`
//! pipelines; the table is for terminals and CI logs.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::json::{escape, number};

impl Snapshot {
    /// Renders the snapshot as Chrome `trace_event` JSON (object form with
    /// a `traceEvents` array). Spans become `"ph":"X"` complete events
    /// (timestamps/durations in microseconds, as the format requires);
    /// counters and gauges become `"ph":"C"` counter events stamped at the
    /// end of the trace. Load the file in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 8);
        let mut end_us = 0u64;
        for s in &self.spans {
            let ts = s.start_ns / 1_000;
            let dur = (s.dur_ns / 1_000).max(1);
            end_us = end_us.max(ts + dur);
            let name = match &s.label {
                Some(l) => format!("{} [{}]", s.name, l),
                None => s.name.to_string(),
            };
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape(&name),
                ts,
                dur,
                s.thread
            ));
        }
        for (name, &v) in &self.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
                escape(name),
                end_us,
                v
            ));
        }
        for (name, &v) in &self.gauges {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
                escape(name),
                end_us,
                number(v)
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",")
        )
    }

    /// Renders the snapshot as JSONL: one self-describing JSON object per
    /// line (`"kind"` is `span`, `counter`, `gauge`, or `histogram`), for
    /// `grep`/`jq`-style pipelines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let label = match &s.label {
                Some(l) => format!(",\"label\":\"{}\"", escape(l)),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{{\"kind\":\"span\",\"name\":\"{}\"{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                escape(s.name),
                label,
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns
            );
        }
        for (name, &v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                v
            );
        }
        for (name, &v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                number(v)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(name),
                h.count,
                h.min,
                h.max,
                number(h.mean()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99)
            );
        }
        out
    }

    /// Renders a plain-text summary: counters, gauges, histogram quantile
    /// rows, and per-span-name aggregate timings. For terminals / CI logs.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>14}", "counter", "total");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<44} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<44} {:>14}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {v:>14.3}");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
        // Aggregate spans by name: count + total/mean wall time.
        let mut by_name: Vec<(&str, u64, u128)> = Vec::new();
        for s in &self.spans {
            match by_name.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, c, total)) => {
                    *c += 1;
                    *total += s.dur_ns as u128;
                }
                None => by_name.push((s.name, 1, s.dur_ns as u128)),
            }
        }
        if !by_name.is_empty() {
            by_name.sort_by_key(|&(n, _, _)| n);
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>14} {:>14}",
                "span", "count", "total_us", "mean_us"
            );
            for (name, count, total_ns) in by_name {
                let total_us = total_ns / 1_000;
                let mean_us = total_us as f64 / count as f64;
                let _ = writeln!(out, "{name:<44} {count:>10} {total_us:>14} {mean_us:>14.1}");
            }
        }
        if out.is_empty() {
            out.push_str("(no events recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::test_support;
    use crate::Collector;
    use std::sync::Arc;

    fn sample_snapshot() -> crate::Snapshot {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let guard = crate::scoped(c.clone());
        {
            let _outer = crate::span("solve");
            let _inner = crate::span_with("step", || "n=3".to_string());
        }
        crate::counter("iters \"quoted\"", 42);
        crate::gauge("load", 0.75);
        for v in [5u64, 10, 100, 100_000] {
            crate::observe("latency", v);
        }
        drop(guard);
        c.snapshot()
    }

    #[test]
    fn chrome_trace_parses_and_carries_all_events() {
        let trace = sample_snapshot().to_chrome_trace();
        let v = json::parse(&trace).expect("emitted trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 spans + 1 counter + 1 gauge.
        assert_eq!(events.len(), 4);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 1.0);
            assert!(e.get("ts").is_some());
            assert!(e.get("tid").is_some());
        }
        // The labeled span keeps its label in the event name.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("step [n=3]") }));
        // The quoted counter name survives escaping.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("iters \"quoted\"") }));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let jsonl = sample_snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 spans + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(lines.len(), 5);
        let mut kinds = std::collections::BTreeMap::new();
        for line in lines {
            let v = json::parse(line).expect("each JSONL line must parse");
            let kind = v.get("kind").and_then(|k| k.as_str()).unwrap().to_string();
            *kinds.entry(kind).or_insert(0u32) += 1;
        }
        assert_eq!(kinds.get("span"), Some(&2));
        assert_eq!(kinds.get("counter"), Some(&1));
        assert_eq!(kinds.get("gauge"), Some(&1));
        assert_eq!(kinds.get("histogram"), Some(&1));
    }

    #[test]
    fn summary_table_mentions_every_metric() {
        let table = sample_snapshot().summary_table();
        for needle in ["iters \"quoted\"", "load", "latency", "solve", "step"] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
        let empty = crate::Snapshot::default().summary_table();
        assert!(empty.contains("no events recorded"));
    }
}
