//! Snapshot export formats: Chrome `trace_event` JSON, JSONL event
//! streams, and a plain-text summary table.
//!
//! All three are pure functions of a [`Snapshot`], so they can be called
//! repeatedly and mixed freely. The Chrome format targets the
//! [Trace Event Format] consumed by `chrome://tracing` and
//! <https://ui.perfetto.dev>; the JSONL stream is for ad-hoc `grep`/`jq`
//! pipelines; the table is for terminals and CI logs.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::json::{escape, number};

impl Snapshot {
    /// Renders the snapshot as Chrome `trace_event` JSON (object form with
    /// a `traceEvents` array). Spans become `"ph":"X"` complete events
    /// (timestamps/durations in microseconds, as the format requires);
    /// counters and gauges become `"ph":"C"` counter events stamped at the
    /// end of the trace. Load the file in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 8);
        let mut end_us = 0u64;
        for s in &self.spans {
            let ts = s.start_ns / 1_000;
            let dur = (s.dur_ns / 1_000).max(1);
            end_us = end_us.max(ts + dur);
            let name = match &s.label {
                Some(l) => format!("{} [{}]", s.name, l),
                None => s.name.to_string(),
            };
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape(&name),
                ts,
                dur,
                s.thread
            ));
        }
        for (name, &v) in &self.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
                escape(name),
                end_us,
                v
            ));
        }
        for (name, &v) in &self.gauges {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"value\":{}}}}}",
                escape(name),
                end_us,
                number(v)
            ));
        }
        // Histogram quantiles as one multi-series counter track each, so
        // health metrics render next to the spans in Perfetto.
        for (name, h) in &self.histograms {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mvasd\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{\"p50\":{},\"p95\":{},\"max\":{}}}}}",
                escape(name),
                end_us,
                h.quantile(0.50),
                h.quantile(0.95),
                h.max
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",")
        )
    }

    /// Renders the snapshot as JSONL: one self-describing JSON object per
    /// line (`"kind"` is `span`, `counter`, `gauge`, or `histogram`), for
    /// `grep`/`jq`-style pipelines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let label = match &s.label {
                Some(l) => format!(",\"label\":\"{}\"", escape(l)),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{{\"kind\":\"span\",\"name\":\"{}\"{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                escape(s.name),
                label,
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns
            );
        }
        for (name, &v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                v
            );
        }
        for (name, &v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                number(v)
            );
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(low, c)| format!("[{low},{c}]"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                number(h.mean()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                buckets.join(",")
            );
        }
        out
    }

    /// Renders a plain-text summary: counters, gauges, histogram quantile
    /// rows, and per-span-name aggregate timings. For terminals / CI logs.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>14}", "counter", "total");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<44} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<44} {:>14}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {v:>14.3}");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
        // Aggregate spans by name: count + total/mean wall time.
        let mut by_name: Vec<(&str, u64, u128)> = Vec::new();
        for s in &self.spans {
            match by_name.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, c, total)) => {
                    *c += 1;
                    *total += s.dur_ns as u128;
                }
                None => by_name.push((s.name, 1, s.dur_ns as u128)),
            }
        }
        if !by_name.is_empty() {
            by_name.sort_by_key(|&(n, _, _)| n);
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>14} {:>14}",
                "span", "count", "total_us", "mean_us"
            );
            for (name, count, total_ns) in by_name {
                let total_us = total_ns / 1_000;
                let mean_us = total_us as f64 / count as f64;
                let _ = writeln!(out, "{name:<44} {count:>10} {total_us:>14} {mean_us:>14.1}");
            }
        }
        if out.is_empty() {
            out.push_str("(no events recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::test_support;
    use crate::Collector;
    use std::sync::Arc;

    fn sample_snapshot() -> crate::Snapshot {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let guard = crate::scoped(c.clone());
        {
            let _outer = crate::span("solve");
            let _inner = crate::span_with("step", || "n=3".to_string());
        }
        crate::counter("iters \"quoted\"", 42);
        crate::gauge("load", 0.75);
        for v in [5u64, 10, 100, 100_000] {
            crate::observe("latency", v);
        }
        drop(guard);
        c.snapshot()
    }

    #[test]
    fn chrome_trace_parses_and_carries_all_events() {
        let trace = sample_snapshot().to_chrome_trace();
        let v = json::parse(&trace).expect("emitted trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 spans + 1 counter + 1 gauge + 1 histogram quantile track.
        assert_eq!(events.len(), 5);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 1.0);
            assert!(e.get("ts").is_some());
            assert!(e.get("tid").is_some());
        }
        // The labeled span keeps its label in the event name.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("step [n=3]") }));
        // The quoted counter name survives escaping.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("iters \"quoted\"") }));
        // The histogram renders as a multi-series counter track.
        let hist = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("latency"))
            .expect("histogram quantile track");
        assert_eq!(hist.get("ph").and_then(|p| p.as_str()), Some("C"));
        let args = hist.get("args").expect("quantile args");
        let p50 = args.get("p50").and_then(|x| x.as_f64()).unwrap();
        let p95 = args.get("p95").and_then(|x| x.as_f64()).unwrap();
        let max = args.get("max").and_then(|x| x.as_f64()).unwrap();
        assert!(p50 <= p95 && p95 <= max);
        assert_eq!(max, 100_000.0);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let jsonl = sample_snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 spans + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(lines.len(), 5);
        let mut kinds = std::collections::BTreeMap::new();
        for line in lines {
            let v = json::parse(line).expect("each JSONL line must parse");
            let kind = v.get("kind").and_then(|k| k.as_str()).unwrap().to_string();
            *kinds.entry(kind).or_insert(0u32) += 1;
        }
        assert_eq!(kinds.get("span"), Some(&2));
        assert_eq!(kinds.get("counter"), Some(&1));
        assert_eq!(kinds.get("gauge"), Some(&1));
        assert_eq!(kinds.get("histogram"), Some(&1));
    }

    /// Satellite: adversarial metric names must survive every sink —
    /// emitted JSON parses and the decoded names are byte-identical.
    #[test]
    fn adversarial_metric_names_round_trip_through_sinks() {
        let _g = test_support::lock();
        let names = [
            "plain.name",
            "quo\"te",
            "back\\slash",
            "new\nline and\ttab",
            "ctrl\u{1}\u{1f}",
            "unicode é😀 →",
            "{\"inject\":1}",
        ];
        let c = Arc::new(Collector::new());
        {
            let _guard = crate::scoped(c.clone());
            for name in names {
                crate::counter(name, 2);
                crate::gauge(name, 1.5);
                crate::observe(name, 9);
            }
        }
        let snap = c.snapshot();

        let trace = snap.to_chrome_trace();
        let v = json::parse(&trace).expect("chrome trace parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        for name in names {
            // counter + gauge + histogram track per name.
            let hits = events
                .iter()
                .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .count();
            assert_eq!(hits, 3, "chrome trace lost {name:?}");
        }

        let jsonl = snap.to_jsonl();
        for line in jsonl.lines() {
            json::parse(line).expect("every JSONL line parses");
        }
        let back = crate::Snapshot::from_jsonl(&jsonl).expect("round-trip");
        for name in names {
            assert_eq!(back.counter(name), 2, "counter {name:?}");
            assert_eq!(back.gauge(name), Some(1.5), "gauge {name:?}");
            assert_eq!(back.histogram(name).map(|h| h.count), Some(1));
        }
    }

    /// Satellite: two snapshots of the same events taken from differently
    /// sharded collectors must serialize identically (merge determinism).
    #[test]
    fn merged_shard_output_is_deterministically_ordered() {
        let _g = test_support::lock();
        let mut renders: Vec<(String, String)> = Vec::new();
        for round in 0..2 {
            let c = Arc::new(Collector::new());
            {
                let _guard = crate::scoped(c.clone());
                std::thread::scope(|scope| {
                    for t in 0..4 {
                        let t = if round == 0 { t } else { 3 - t };
                        scope.spawn(move || {
                            for i in 0..25 {
                                crate::counter("z.last", 1);
                                crate::counter("a.first", 2);
                                crate::observe("lat", (t * 25 + i) as u64);
                            }
                        });
                    }
                });
            }
            let snap = c.snapshot();
            renders.push((snap.to_jsonl(), snap.to_chrome_trace()));
        }
        // Thread scheduling and shard assignment differed; output must not.
        assert_eq!(renders[0].0, renders[1].0, "to_jsonl order drifted");
        assert_eq!(renders[0].1, renders[1].1, "to_chrome_trace order drifted");
        // Names are sorted, so a.first precedes z.last in the stream.
        let a = renders[0].0.find("a.first").expect("a.first present");
        let z = renders[0].0.find("z.last").expect("z.last present");
        assert!(a < z);
    }

    #[test]
    fn summary_table_mentions_every_metric() {
        let table = sample_snapshot().summary_table();
        for needle in ["iters \"quoted\"", "load", "latency", "solve", "step"] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
        let empty = crate::Snapshot::default().summary_table();
        assert!(empty.contains("no events recorded"));
    }
}
