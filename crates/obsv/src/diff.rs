//! Snapshot persistence and comparison: [`Snapshot::from_jsonl`] (the
//! inverse of [`Snapshot::to_jsonl`] for counters/gauges/histograms) and
//! [`Snapshot::diff`], which subtracts a baseline snapshot so health drift
//! between two runs is inspectable by hand (`obsv_report --diff`).

use std::collections::BTreeMap;

use crate::collector::Snapshot;
use crate::hist::HistogramSnapshot;
use crate::json::{self, Json};

/// Pulls a non-negative integer field out of a parsed JSONL line.
fn u64_field(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .filter(|x| *x >= 0.0)
        .map(|x| x as u64)
        .ok_or_else(|| format!("line {line_no}: missing or invalid \"{key}\""))
}

fn str_field<'a>(v: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing or invalid \"{key}\""))
}

impl Snapshot {
    /// Parses a JSONL stream produced by [`to_jsonl`](Snapshot::to_jsonl)
    /// back into a snapshot. Counters, gauges, and histograms round-trip
    /// exactly (histogram lines carry their full bucket list); span lines
    /// are skipped — spans are timing records tied to a live process, not
    /// comparable state. Unknown kinds are an error so schema drift is
    /// caught loudly.
    pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
            match str_field(&v, "kind", line_no)? {
                "span" => {}
                "counter" => {
                    let name = str_field(&v, "name", line_no)?.to_string();
                    let value = u64_field(&v, "value", line_no)?;
                    *snap.counters.entry(name).or_default() += value;
                }
                "gauge" => {
                    let name = str_field(&v, "name", line_no)?.to_string();
                    // A null value means the gauge was non-finite when
                    // serialized (JSON has no NaN); drop it.
                    if let Some(value) = v.get("value").and_then(Json::as_f64) {
                        snap.gauges.insert(name, value);
                    }
                }
                "histogram" => {
                    let name = str_field(&v, "name", line_no)?.to_string();
                    let buckets_json = v
                        .get("buckets")
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("line {line_no}: missing \"buckets\""))?;
                    let mut buckets = Vec::with_capacity(buckets_json.len());
                    for b in buckets_json {
                        let malformed = || format!("line {line_no}: malformed bucket");
                        let (low, count) = match b.as_array() {
                            Some([low, count]) => (
                                low.as_f64().filter(|x| *x >= 0.0).ok_or_else(malformed)?,
                                count.as_f64().filter(|x| *x >= 0.0).ok_or_else(malformed)?,
                            ),
                            _ => return Err(malformed()),
                        };
                        buckets.push((low as u64, count as u64));
                    }
                    snap.histograms.insert(
                        name,
                        HistogramSnapshot {
                            count: u64_field(&v, "count", line_no)?,
                            sum: u64_field(&v, "sum", line_no)? as u128,
                            min: u64_field(&v, "min", line_no)?,
                            max: u64_field(&v, "max", line_no)?,
                            buckets,
                        },
                    );
                }
                other => return Err(format!("line {line_no}: unknown kind {other:?}")),
            }
        }
        Ok(snap)
    }

    /// Subtracts `base` from `self`: counters and histogram buckets are
    /// saturating deltas (a counter that went backwards — a different
    /// process — reads 0), gauges become `self − base` where both sides
    /// have the gauge (else the later value verbatim), and spans are
    /// dropped. The result renders through the usual sinks, so
    /// `diff.summary_table()` is the drift report.
    pub fn diff(&self, base: &Snapshot) -> Snapshot {
        let counters: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(base.counter(k))))
            .collect();
        let gauges: BTreeMap<String, f64> = self
            .gauges
            .iter()
            .map(|(k, &v)| match base.gauge(k) {
                Some(b) => (k.clone(), v - b),
                None => (k.clone(), v),
            })
            .collect();
        let histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let delta = match base.histogram(k) {
                    Some(b) => {
                        let base_count =
                            |low: u64| b.buckets.iter().find(|&&(l, _)| l == low).map(|&(_, c)| c);
                        let buckets: Vec<(u64, u64)> = h
                            .buckets
                            .iter()
                            .map(|&(low, c)| (low, c.saturating_sub(base_count(low).unwrap_or(0))))
                            .filter(|&(_, c)| c > 0)
                            .collect();
                        HistogramSnapshot {
                            count: h.count.saturating_sub(b.count),
                            sum: h.sum.saturating_sub(b.sum),
                            // min/max cannot be un-merged; keep the later
                            // snapshot's envelope.
                            min: h.min,
                            max: h.max,
                            buckets,
                        }
                    }
                    None => h.clone(),
                };
                (k.clone(), delta)
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::Collector;
    use std::sync::Arc;

    fn snap_with(f: impl FnOnce()) -> Snapshot {
        let c = Arc::new(Collector::new());
        {
            let _guard = crate::scoped(c.clone());
            f();
        }
        c.snapshot()
    }

    #[test]
    fn jsonl_round_trips_counters_gauges_histograms() {
        let _g = test_support::lock();
        let snap = snap_with(|| {
            crate::counter("solver.steps", 42);
            crate::counter("weird \"name\"\n", 7);
            crate::gauge("load", -0.75);
            for v in [0u64, 5, 31, 32, 1000, 1 << 40] {
                crate::observe("latency", v);
            }
            drop(crate::span("run"));
        });
        let back = Snapshot::from_jsonl(&snap.to_jsonl()).expect("round-trip");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert!(back.spans.is_empty(), "spans are intentionally dropped");
    }

    #[test]
    fn from_jsonl_rejects_truncated_and_unknown_lines() {
        assert!(Snapshot::from_jsonl("{\"kind\":\"counter\",\"name\":\"x\"").is_err());
        assert!(Snapshot::from_jsonl("{\"kind\":\"mystery\",\"name\":\"x\"}").is_err());
        assert!(Snapshot::from_jsonl("{\"name\":\"x\",\"value\":1}").is_err());
        assert!(
            Snapshot::from_jsonl("{\"kind\":\"counter\",\"name\":\"x\",\"value\":-3}").is_err()
        );
        // Blank lines are fine; a valid stream parses.
        let ok = "\n{\"kind\":\"counter\",\"name\":\"x\",\"value\":3}\n\n";
        assert_eq!(Snapshot::from_jsonl(ok).expect("parses").counter("x"), 3);
    }

    #[test]
    fn diff_subtracts_baseline() {
        let _g = test_support::lock();
        let base = snap_with(|| {
            crate::counter("steps", 10);
            crate::counter("gone", 5);
            crate::gauge("depth", 2.0);
            crate::observe("lat", 5);
            crate::observe("lat", 40);
        });
        let later = snap_with(|| {
            crate::counter("steps", 25);
            crate::counter("fresh", 3);
            crate::gauge("depth", 3.5);
            crate::gauge("new_gauge", 9.0);
            for v in [5u64, 5, 40, 100] {
                crate::observe("lat", v);
            }
        });
        let d = later.diff(&base);
        assert_eq!(d.counter("steps"), 15);
        assert_eq!(d.counter("fresh"), 3);
        // Keys only in the baseline don't resurface in the delta.
        assert!(!d.counters.contains_key("gone"));
        assert_eq!(d.gauge("depth"), Some(1.5));
        assert_eq!(d.gauge("new_gauge"), Some(9.0));
        let h = d.histogram("lat").expect("lat delta");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 150 - 45);
        // Bucket-wise: one extra 5, the 40s cancel, one new 100.
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 2);
        assert!(h.buckets.iter().any(|&(low, c)| low == 5 && c == 1));
        // A counter that went backwards saturates at zero, not underflow.
        let d2 = base.diff(&later);
        assert_eq!(d2.counter("steps"), 0);
        // The delta renders through the normal sinks.
        assert!(d.summary_table().contains("steps"));
    }
}
