//! Numeric-health telemetry: [`HealthProbe`] accumulators for solver hot
//! paths and the structured [`HealthReport`] distilled from a snapshot.
//!
//! The paper trusts only *observed* quantities; this module applies the
//! same discipline to the solver pipeline itself. A [`HealthProbe`] rides
//! inside a numeric hot loop (log-domain convolution, fixed-point
//! iteration, FES disaggregation) and tracks the dynamic range of a watched
//! quantity plus NaN/clamp/underflow incident counts — all buffered
//! locally, [`CounterBatch`](crate::CounterBatch)-style, behind the same
//! one-relaxed-atomic-load disabled path as every other instrumentation
//! call. [`HealthReport::from_snapshot`] then condenses the emitted
//! `health.*` metrics into one comparable record (`mvasd-health/1` JSON)
//! that `mvasd-doctor` checks against baseline floors.
//!
//! # Metric naming
//!
//! A probe with domain `d` flushes gauges `health.d.lo` / `health.d.hi` /
//! `health.d.range` and counters `health.d.samples` / `health.d.nan_poison`
//! / `health.d.clamp` / `health.d.underflow`. Counters are flushed as
//! deltas, so repeated flushes never double-count.

use crate::collector::Snapshot;
use crate::json::{self, number, Json};

/// A locally-buffered numeric-health accumulator for one hot-path domain.
///
/// `watch` is the per-iteration call: one relaxed atomic load when
/// disabled, a NaN check plus two comparisons when enabled — no recorder
/// dispatch, no allocation, no locks. State reaches the recorder only on
/// [`flush`](Self::flush) (and on drop). Mirrors
/// [`CounterBatch`](crate::CounterBatch) semantics: increments accumulated
/// while disabled are discarded, and clones start fresh so a snapshotted
/// solver never double-flushes pending state.
#[derive(Debug)]
pub struct HealthProbe {
    domain: &'static str,
    lo: f64,
    hi: f64,
    samples: u64,
    nan_trips: u64,
    clamps: u64,
    underflows: u64,
}

impl HealthProbe {
    /// A fresh probe for `domain` (e.g. `"conv.lse"`).
    pub fn new(domain: &'static str) -> Self {
        Self {
            domain,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            samples: 0,
            nan_trips: 0,
            clamps: 0,
            underflows: 0,
        }
    }

    /// Drops everything buffered locally (does not touch the recorder).
    #[inline]
    fn reset(&mut self) {
        self.lo = f64::INFINITY;
        self.hi = f64::NEG_INFINITY;
        self.samples = 0;
        self.nan_trips = 0;
        self.clamps = 0;
        self.underflows = 0;
    }

    /// Feeds one watched value: NaN counts as a poison trip, non-finite
    /// infinities are ignored (log-domain `−∞` is a legitimate value, not
    /// an incident), finite values extend the `[lo, hi]` envelope.
    // lint: no-alloc
    #[inline]
    pub fn watch(&mut self, v: f64) {
        if !crate::enabled() {
            // Discard state gathered while disabled so a recorder installed
            // later doesn't inherit ranges from the uninstrumented era.
            self.reset();
            return;
        }
        if v.is_nan() {
            self.nan_trips += 1;
        } else if v.is_finite() {
            self.samples += 1;
            if v < self.lo {
                self.lo = v;
            }
            if v > self.hi {
                self.hi = v;
            }
        }
    }

    /// Counts one clamp incident (a value forced back into its legal
    /// range).
    #[inline]
    pub fn count_clamp(&mut self) {
        if crate::enabled() {
            self.clamps += 1;
        }
    }

    /// Counts one underflow incident (a term dropped because `exp` would
    /// flush it to zero).
    #[inline]
    pub fn count_underflow(&mut self) {
        if crate::enabled() {
            self.underflows += 1;
        }
    }

    /// Watched-value envelope buffered so far, if any value was watched.
    pub fn envelope(&self) -> Option<(f64, f64)> {
        if self.samples > 0 {
            Some((self.lo, self.hi))
        } else {
            None
        }
    }

    /// Pushes buffered state to the recorder: range gauges (only when at
    /// least one value was watched) plus incident-count deltas. Buffered
    /// state is cleared either way.
    pub fn flush(&mut self) {
        if crate::enabled() {
            if self.samples > 0 {
                crate::gauge(&format!("health.{}.lo", self.domain), self.lo);
                crate::gauge(&format!("health.{}.hi", self.domain), self.hi);
                crate::gauge(&format!("health.{}.range", self.domain), self.hi - self.lo);
                crate::counter(&format!("health.{}.samples", self.domain), self.samples);
            }
            if self.nan_trips > 0 {
                crate::counter(
                    &format!("health.{}.nan_poison", self.domain),
                    self.nan_trips,
                );
            }
            if self.clamps > 0 {
                crate::counter(&format!("health.{}.clamp", self.domain), self.clamps);
            }
            if self.underflows > 0 {
                crate::counter(
                    &format!("health.{}.underflow", self.domain),
                    self.underflows,
                );
            }
        }
        self.reset();
    }
}

impl Drop for HealthProbe {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Clone for HealthProbe {
    /// Clones start fresh: a snapshot of a solver mid-flight must not
    /// double-flush the pending envelope when both copies later drop.
    fn clone(&self) -> Self {
        Self::new(self.domain)
    }
}

/// Maps a fixed-point residual to "converged decimal digits × 100" for
/// histogram storage: `residual = 1e-9` → 900. Non-positive residuals mean
/// exact convergence and map to the cap; the result is clamped to
/// `[0, 2000]` (20 digits — beyond f64 precision).
pub fn residual_digits(residual: f64) -> u64 {
    if residual.is_nan() || residual <= 0.0 {
        return 2000;
    }
    let digits = -residual.log10() * 100.0;
    if digits <= 0.0 {
        0
    } else if digits >= 2000.0 {
        2000
    } else {
        // Truncation keeps the value conservative (never reports more
        // converged digits than the residual supports).
        digits as u64
    }
}

/// A structured numeric-health record distilled from the `health.*`
/// metrics in a [`Snapshot`]. `Option` fields are absent when the
/// corresponding subsystem never ran under the recorder.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Total values watched across all probes.
    pub samples: u64,
    /// NaN reads across all probes (poisoned-cell trips): must be zero.
    pub nan_poison_trips: u64,
    /// Clamp incidents across all probes.
    pub clamp_events: u64,
    /// Underflow incidents across all probes.
    pub underflow_events: u64,
    /// Smallest `ln G` the convolution workspace produced.
    pub lse_lo: Option<f64>,
    /// Largest `ln G` the convolution workspace produced.
    pub lse_hi: Option<f64>,
    /// Log-sum-exp dynamic range (`lse_hi − lse_lo`).
    pub lse_range: Option<f64>,
    /// Median converged digits of the Schweitzer fixed point.
    pub schweitzer_residual_digits_p50: Option<f64>,
    /// Worst-case (fewest) converged digits of the Schweitzer fixed point.
    pub schweitzer_residual_digits_min: Option<f64>,
    /// Dynamic range of the MoM `ln G` lattice (recurrence conditioning).
    pub mom_lng_range: Option<f64>,
    /// Spread between the MoM first-moment and normalization lattices at
    /// the solved population (`max |ln H − ln G|`).
    pub mom_moment_spread: Option<f64>,
    /// Max relative divergence between the lattice and MoM multiclass
    /// backends on the same model.
    pub lattice_mom_divergence: Option<f64>,
    /// Hierarchy `ProfileCache` hit rate in `[0, 1]`.
    pub cache_hit_rate: Option<f64>,
    /// Profile extensions performed after a cached sub-engine was reused.
    pub profile_stale_steps: u64,
    /// Largest FES disaggregation error `|Σ_leaf Q − Q_fes|` observed.
    pub fes_disagg_error: Option<f64>,
    /// Relative half-width of the DES response-time confidence interval.
    pub des_ci_rel_width: Option<f64>,
}

/// Sums every counter named `health.*.<suffix>`.
fn sum_suffix(snap: &Snapshot, suffix: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|(k, _)| k.starts_with("health.") && k.ends_with(suffix))
        .map(|(_, &v)| v)
        .sum()
}

impl HealthReport {
    /// Distills the `health.*` metrics of `snap` into a report.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let residual = snap.histogram("health.schweitzer.residual_digits");
        Self {
            samples: sum_suffix(snap, ".samples"),
            nan_poison_trips: sum_suffix(snap, ".nan_poison"),
            clamp_events: sum_suffix(snap, ".clamp"),
            underflow_events: sum_suffix(snap, ".underflow"),
            lse_lo: snap.gauge("health.conv.lse.lo"),
            lse_hi: snap.gauge("health.conv.lse.hi"),
            lse_range: snap.gauge("health.conv.lse.range"),
            schweitzer_residual_digits_p50: residual.map(|h| h.quantile(0.50) as f64 / 100.0),
            schweitzer_residual_digits_min: residual.map(|h| h.min as f64 / 100.0),
            mom_lng_range: snap.gauge("health.mom.lng.range"),
            mom_moment_spread: snap.gauge("health.mom.moment_spread"),
            lattice_mom_divergence: snap.gauge("health.multiclass.lattice_mom_divergence"),
            cache_hit_rate: snap.gauge("health.hierarchy.cache_hit_rate"),
            profile_stale_steps: snap.counter("health.hierarchy.profile_stale_steps"),
            fes_disagg_error: snap.gauge("health.hierarchy.disagg.hi"),
            des_ci_rel_width: snap.gauge("health.simnet.ci_rel_width"),
        }
    }

    /// Serializes as one `mvasd-health/1` JSON object. Absent subsystems
    /// are omitted rather than written as nulls.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = vec![
            "\"schema\":\"mvasd-health/1\"".to_string(),
            format!("\"samples\":{}", self.samples),
            format!("\"nan_poison_trips\":{}", self.nan_poison_trips),
            format!("\"clamp_events\":{}", self.clamp_events),
            format!("\"underflow_events\":{}", self.underflow_events),
            format!("\"profile_stale_steps\":{}", self.profile_stale_steps),
        ];
        let optional = [
            ("lse_lo", self.lse_lo),
            ("lse_hi", self.lse_hi),
            ("lse_range", self.lse_range),
            (
                "schweitzer_residual_digits_p50",
                self.schweitzer_residual_digits_p50,
            ),
            (
                "schweitzer_residual_digits_min",
                self.schweitzer_residual_digits_min,
            ),
            ("mom_lng_range", self.mom_lng_range),
            ("mom_moment_spread", self.mom_moment_spread),
            ("lattice_mom_divergence", self.lattice_mom_divergence),
            ("cache_hit_rate", self.cache_hit_rate),
            ("fes_disagg_error", self.fes_disagg_error),
            ("des_ci_rel_width", self.des_ci_rel_width),
        ];
        for (name, v) in optional {
            if let Some(v) = v {
                fields.push(format!("\"{}\":{}", name, number(v)));
            }
        }
        format!("{{{}}}\n", fields.join(","))
    }

    /// Parses a `mvasd-health/1` JSON object produced by
    /// [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("health report: {e}"))?;
        match v.get("schema").and_then(Json::as_str) {
            Some("mvasd-health/1") => {}
            Some(other) => return Err(format!("health report: unknown schema {other:?}")),
            None => return Err("health report: missing \"schema\" field".to_string()),
        }
        let count = |key: &str| -> u64 {
            v.get(key)
                .and_then(Json::as_f64)
                .map(|x| x.max(0.0) as u64)
                .unwrap_or(0)
        };
        let opt = |key: &str| v.get(key).and_then(Json::as_f64);
        Ok(Self {
            samples: count("samples"),
            nan_poison_trips: count("nan_poison_trips"),
            clamp_events: count("clamp_events"),
            underflow_events: count("underflow_events"),
            lse_lo: opt("lse_lo"),
            lse_hi: opt("lse_hi"),
            lse_range: opt("lse_range"),
            schweitzer_residual_digits_p50: opt("schweitzer_residual_digits_p50"),
            schweitzer_residual_digits_min: opt("schweitzer_residual_digits_min"),
            mom_lng_range: opt("mom_lng_range"),
            mom_moment_spread: opt("mom_moment_spread"),
            lattice_mom_divergence: opt("lattice_mom_divergence"),
            cache_hit_rate: opt("cache_hit_rate"),
            profile_stale_steps: count("profile_stale_steps"),
            fes_disagg_error: opt("fes_disagg_error"),
            des_ci_rel_width: opt("des_ci_rel_width"),
        })
    }

    /// A terse human-readable digest for terminals / CI logs.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "health: samples={} nan_poison={} clamps={} underflows={}",
            self.samples, self.nan_poison_trips, self.clamp_events, self.underflow_events
        );
        if let Some(r) = self.lse_range {
            out.push_str(&format!(" lse_range={r:.3}"));
        }
        if let Some(d) = self.schweitzer_residual_digits_min {
            out.push_str(&format!(" schweitzer_digits_min={d:.2}"));
        }
        if let Some(d) = self.lattice_mom_divergence {
            out.push_str(&format!(" lattice_mom_div={d:.3e}"));
        }
        if let Some(h) = self.cache_hit_rate {
            out.push_str(&format!(" cache_hit_rate={h:.3}"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::Collector;
    use std::sync::Arc;

    #[test]
    fn probe_is_inert_and_stateless_while_disabled() {
        let _g = test_support::lock();
        assert!(!crate::enabled());
        let mut p = HealthProbe::new("test.domain");
        p.watch(1.0);
        p.watch(f64::NAN);
        p.count_clamp();
        p.count_underflow();
        assert_eq!(p.envelope(), None);
        // Enabling later must not inherit anything from the disabled era.
        let c = Arc::new(Collector::new());
        {
            let _guard = crate::scoped(c.clone());
            p.watch(5.0);
            p.flush();
        }
        let snap = c.snapshot();
        assert_eq!(snap.counter("health.test.domain.samples"), 1);
        assert_eq!(snap.counter("health.test.domain.nan_poison"), 0);
        assert_eq!(snap.gauge("health.test.domain.lo"), Some(5.0));
        assert_eq!(snap.gauge("health.test.domain.hi"), Some(5.0));
    }

    #[test]
    fn probe_tracks_envelope_and_incidents() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        let mut p = HealthProbe::new("conv.lse");
        for v in [3.0, -2.0, 10.0, f64::NEG_INFINITY] {
            p.watch(v);
        }
        p.watch(f64::NAN);
        p.count_underflow();
        p.count_underflow();
        p.count_clamp();
        assert_eq!(p.envelope(), Some((-2.0, 10.0)));
        p.flush();
        // A second flush must not double-count (deltas were cleared).
        p.flush();
        let snap = c.snapshot();
        assert_eq!(snap.gauge("health.conv.lse.lo"), Some(-2.0));
        assert_eq!(snap.gauge("health.conv.lse.hi"), Some(10.0));
        assert_eq!(snap.gauge("health.conv.lse.range"), Some(12.0));
        // −∞ is a legitimate log-domain value, not a sample or an incident.
        assert_eq!(snap.counter("health.conv.lse.samples"), 3);
        assert_eq!(snap.counter("health.conv.lse.nan_poison"), 1);
        assert_eq!(snap.counter("health.conv.lse.underflow"), 2);
        assert_eq!(snap.counter("health.conv.lse.clamp"), 1);
    }

    #[test]
    fn probe_flushes_on_drop_and_clone_resets() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        let mut p = HealthProbe::new("drop.domain");
        p.watch(7.0);
        let clone = p.clone();
        drop(clone); // fresh clone: flushes nothing
        drop(p);
        let snap = c.snapshot();
        assert_eq!(snap.counter("health.drop.domain.samples"), 1);
        assert_eq!(snap.gauge("health.drop.domain.range"), Some(0.0));
    }

    #[test]
    fn residual_digits_maps_residuals_conservatively() {
        assert_eq!(residual_digits(1e-9), 900);
        assert_eq!(residual_digits(1e-12), 1200);
        assert_eq!(residual_digits(0.5), 30); // -log10(0.5) ≈ 0.301
        assert_eq!(residual_digits(1.0), 0);
        assert_eq!(residual_digits(10.0), 0); // clamped at zero digits
        assert_eq!(residual_digits(0.0), 2000); // exact convergence
        assert_eq!(residual_digits(-1.0), 2000);
        assert_eq!(residual_digits(f64::NAN), 2000);
        assert_eq!(residual_digits(1e-30), 2000); // capped
    }

    #[test]
    fn report_distills_snapshot_and_round_trips_json() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        let mut p = HealthProbe::new("conv.lse");
        p.watch(-5.0);
        p.watch(40.0);
        p.count_underflow();
        p.flush();
        crate::observe("health.schweitzer.residual_digits", residual_digits(1e-8));
        crate::observe("health.schweitzer.residual_digits", residual_digits(1e-10));
        crate::gauge("health.hierarchy.cache_hit_rate", 0.75);
        crate::counter("health.hierarchy.profile_stale_steps", 3);
        crate::gauge("health.multiclass.lattice_mom_divergence", 2.5e-13);
        let report = HealthReport::from_snapshot(&c.snapshot());
        assert_eq!(report.samples, 2);
        assert_eq!(report.nan_poison_trips, 0);
        assert_eq!(report.underflow_events, 1);
        assert_eq!(report.lse_range, Some(45.0));
        assert_eq!(report.schweitzer_residual_digits_min, Some(8.0));
        assert_eq!(report.cache_hit_rate, Some(0.75));
        assert_eq!(report.profile_stale_steps, 3);
        assert_eq!(report.mom_lng_range, None);
        assert_eq!(report.des_ci_rel_width, None);

        let text = report.to_json();
        assert!(json::parse(&text).is_ok(), "health JSON must parse");
        let back = HealthReport::from_json(&text).expect("round-trip");
        // f64 → text → f64 is exact for these values ({} prints shortest
        // round-trippable form).
        assert_eq!(back, report);
        assert!(report.summary().contains("nan_poison=0"));
    }

    #[test]
    fn report_from_json_rejects_garbage() {
        assert!(HealthReport::from_json("").is_err());
        assert!(HealthReport::from_json("{}").is_err());
        assert!(HealthReport::from_json("{\"schema\":\"other/9\"}").is_err());
        let minimal = "{\"schema\":\"mvasd-health/1\"}";
        let r = HealthReport::from_json(minimal).expect("minimal report");
        assert_eq!(r, HealthReport::default());
    }

    #[test]
    fn empty_snapshot_yields_default_report() {
        let r = HealthReport::from_snapshot(&Snapshot::default());
        assert_eq!(r, HealthReport::default());
        let text = r.to_json();
        assert_eq!(HealthReport::from_json(&text).expect("parse"), r);
    }
}
