//! Fixed-bucket log-linear histograms over `u64` values (typically
//! nanoseconds or event counts).
//!
//! Layout (HdrHistogram-style, compile-time fixed):
//!
//! * values `0..32` get exact width-1 buckets (indices `0..32`);
//! * every power-of-two octave `[2^m, 2^{m+1})` for `m >= 5` is split into
//!   16 linear sub-buckets of width `2^{m-4}`, giving a worst-case
//!   relative resolution of 1/16 (6.25 %).
//!
//! The buckets partition `0..=u64::MAX` exactly: every value lands in
//! exactly one bucket and adjacent bucket bounds touch (the propcheck
//! suite below asserts both). `32 + 59·16 = 976` buckets total, so a
//! histogram is a flat ~8 KiB array — cheap enough to keep one per metric
//! name inside a collector shard.

/// Sub-buckets per octave above the linear range.
const SUB_BUCKETS: u64 = 16;
/// Values below this get exact width-1 buckets.
const LINEAR_MAX: u64 = 32;
/// First octave exponent handled log-linearly (`2^5 = LINEAR_MAX`).
const FIRST_OCTAVE: u32 = 5;

/// Total bucket count: 32 linear + 16 per octave for octaves 5..=63.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * 16;

/// The bucket index covering `v`. Total over `u64`: always in
/// `0..NUM_BUCKETS`.
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
    let sub = (v - (1u64 << msb)) >> (msb - 4); // 0..16
    LINEAR_MAX as usize + (msb - FIRST_OCTAVE) as usize * SUB_BUCKETS as usize + sub as usize
}

/// Bucket `i`'s half-open value range `[low, high)`. `high` is `u128`
/// because the last bucket's exclusive bound is `2^64`.
pub fn bucket_bounds(i: usize) -> (u64, u128) {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if (i as u64) < LINEAR_MAX {
        return (i as u64, i as u128 + 1);
    }
    let rel = i - LINEAR_MAX as usize;
    let msb = FIRST_OCTAVE + (rel / SUB_BUCKETS as usize) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (msb - 4);
    let low = (1u64 << msb) + sub * width;
    (low, low as u128 + width as u128)
}

/// A log-linear histogram: counts per bucket plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    // lint: no-alloc
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A frozen, compact snapshot (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_bounds(i).0, c))
                .collect(),
        }
    }
}

/// A frozen histogram: `(bucket low bound, count)` pairs ascending, plus
/// the exact aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u128,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(low bound, count)`, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (nearest-rank over buckets,
    /// reported as the bucket's low bound clamped into `[min, max]`).
    /// Exact for values below 32; within 6.25 % above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(low, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return low.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasd_numerics::propcheck::{check, Config};

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v);
            assert_eq!(hi, v as u128 + 1);
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Adjacent bounds touch over the whole index range.
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi, lo_next as u128, "gap/overlap between {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, 1u128 << 64);
    }

    #[test]
    fn propcheck_no_value_lost_and_bounds_contain() {
        let cfg = Config::default().cases(4000);
        check("hist-bounds-contain", &cfg, |g| {
            // Mix raw u64s with small values so the linear range is hit.
            let v = if g.bool() { g.raw() } else { g.raw() % 64 };
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "v={v} below bucket low {lo}");
            assert!((v as u128) < hi, "v={v} at/above bucket high {hi}");
        });
    }

    #[test]
    fn propcheck_monotone_boundaries() {
        let cfg = Config::default().cases(2000);
        check("hist-monotone", &cfg, |g| {
            let a = g.raw();
            let b = g.raw();
            let (small, big) = if a <= b { (a, b) } else { (b, a) };
            assert!(bucket_index(small) <= bucket_index(big));
        });
    }

    #[test]
    fn propcheck_record_preserves_aggregates() {
        let cfg = Config::default().cases(300);
        check("hist-aggregates", &cfg, |g| {
            let n = g.usize_in(1, 40);
            let values: Vec<u64> = (0..n)
                .map(|_| {
                    if g.bool() {
                        g.raw() % 1_000_000
                    } else {
                        g.raw()
                    }
                })
                .collect();
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!(s.count, n as u64);
            assert_eq!(s.sum, values.iter().map(|&v| v as u128).sum::<u128>());
            assert_eq!(s.min, *values.iter().min().unwrap());
            assert_eq!(s.max, *values.iter().max().unwrap());
            // No value lost: bucket counts total the record count.
            assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n as u64);
            // Quantiles live inside the recorded range.
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                let qv = s.quantile(q);
                assert!(qv >= s.min && qv <= s.max, "q={q}: {qv}");
            }
        });
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 1000, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 47, 48, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn quantiles_exact_in_linear_range() {
        let mut h = Histogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(1.0), 20);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.mean(), 10.5);
    }
}
