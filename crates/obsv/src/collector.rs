//! The aggregating recorder: sharded per-thread buffers merged into a
//! deterministic [`Snapshot`].
//!
//! Shards are keyed by the caller's stable thread index, so threads spawned
//! by `std::thread::scope` work queues (the sweep engine, the campaign
//! runner) mostly hit distinct shards and the mutexes stay uncontended.
//! [`Collector::snapshot`] merges every shard into sorted maps, so two
//! snapshots of the same events are identical regardless of which threads
//! recorded them.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::{Recorder, SpanRecord};

const SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    counters: HashMap<String, u64>,
    /// Gauge values with a global write sequence so the snapshot can keep
    /// the latest write across shards.
    gauges: HashMap<String, (u64, f64)>,
    histograms: HashMap<String, Histogram>,
    spans: Vec<SpanRecord>,
}

/// Aggregates every recorded event in memory; snapshot at any time.
pub struct Collector {
    shards: Vec<Mutex<Shard>>,
    gauge_seq: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            gauge_seq: AtomicU64::new(0),
        }
    }

    fn shard(&self) -> std::sync::MutexGuard<'_, Shard> {
        let idx = crate::current_thread() as usize % SHARDS;
        self.shards[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Merges all shards into a deterministic snapshot. The collector
    /// keeps accumulating afterwards.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (k, v) in &s.counters {
                *counters.entry(k.clone()).or_default() += v;
            }
            for (k, &(seq, v)) in &s.gauges {
                match gauges.get(k) {
                    Some(&(old_seq, _)) if old_seq >= seq => {}
                    _ => {
                        gauges.insert(k.clone(), (seq, v));
                    }
                }
            }
            for (k, h) in &s.histograms {
                histograms.entry(k.clone()).or_default().merge(h);
            }
            spans.extend(s.spans.iter().cloned());
        }
        spans.sort_by_key(|s| (s.start_ns, s.thread, s.depth));
        Snapshot {
            counters,
            gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
            histograms: histograms
                .into_iter()
                .map(|(k, h)| (k, h.snapshot()))
                .collect(),
            spans,
        }
    }

    /// Drops everything recorded so far.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(|p| p.into_inner());
            *s = Shard::default();
        }
    }
}

impl Recorder for Collector {
    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.shard();
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        let mut s = self.shard();
        s.gauges.insert(name.to_string(), (seq, value));
    }

    fn observe(&self, name: &str, value: u64) {
        let mut s = self.shard();
        match s.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                s.histograms.insert(name.to_string(), h);
            }
        }
    }

    fn record_span(&self, span: SpanRecord) {
        self.shard().spans.push(span);
    }
}

/// A frozen, deterministic view of everything a [`Collector`] aggregated.
/// Sinks: [`to_chrome_trace`](Snapshot::to_chrome_trace),
/// [`to_jsonl`](Snapshot::to_jsonl),
/// [`summary_table`](Snapshot::summary_table) (in `sink.rs`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge value by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Every recorded span, ordered by start time.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// A counter's total (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's latest value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's snapshot, if any value was observed under the name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Number of spans recorded under `name`.
    pub fn spans_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use std::sync::Arc;

    #[test]
    fn aggregates_across_scoped_threads() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        crate::counter("work.items", 1);
                        crate::observe("work.size", 7);
                    }
                    let _s = crate::span("work.chunk");
                });
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.counter("work.items"), 400);
        let h = snap.histogram("work.size").unwrap();
        assert_eq!(h.count, 400);
        assert_eq!(h.min, 7);
        assert_eq!(h.max, 7);
        assert_eq!(snap.spans_named("work.chunk"), 4);
        // Spans from distinct scoped threads carry distinct thread ids.
        let mut threads: Vec<u64> = snap.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
    }

    #[test]
    fn gauge_keeps_latest_write() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        crate::gauge("depth", 1.0);
        crate::gauge("depth", 2.0);
        crate::gauge("depth", 3.0);
        assert_eq!(c.snapshot().gauge("depth"), Some(3.0));
        assert_eq!(c.snapshot().gauge("missing"), None);
    }

    #[test]
    fn clear_resets_everything() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        crate::counter("x", 1);
        drop(crate::span("s"));
        c.clear();
        let snap = c.snapshot();
        assert_eq!(snap.counter("x"), 0);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = crate::scoped(c.clone());
        crate::counter("b", 2);
        crate::counter("a", 1);
        crate::observe("h", 10);
        let snap = c.snapshot();
        assert_eq!(snap, c.snapshot());
        // BTreeMap ordering: "a" before "b".
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "b"]);
    }
}
