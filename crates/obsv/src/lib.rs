//! Zero-dependency observability for the MVASD suite: hierarchical spans
//! with monotonic timing, counters/gauges, and fixed-bucket log-linear
//! histograms behind a cheap [`Recorder`] trait.
//!
//! The paper derives every model input from *observed* quantities (vmstat,
//! iostat, eq. 7 packet counters); this crate makes the model pipeline
//! itself observable the same way. Every solver step, stop-condition check,
//! sweep cache decision, simulator run, and campaign worker emits events
//! through the free functions here ([`span`], [`counter`], [`gauge`],
//! [`observe`]).
//!
//! # Overhead policy
//!
//! Instrumentation is **off by default** and must cost near-zero when off:
//! every free function starts with one relaxed atomic load and returns
//! immediately when no recorder is installed — no clock reads, no
//! allocation, no locks. Label closures ([`span_with`]) are only evaluated
//! when a recorder is live. The root `observability` suite asserts both the
//! bit-for-bit determinism of solver output under instrumentation and a
//! < 2 % overhead bound for the disabled path.
//!
//! # Typical use
//!
//! ```
//! use std::sync::Arc;
//! use mvasd_obsv as obsv;
//!
//! let collector = Arc::new(obsv::Collector::new());
//! let _guard = obsv::scoped(collector.clone());
//! {
//!     let _span = obsv::span("demo.work");
//!     obsv::counter("demo.items", 3);
//! }
//! let snap = collector.snapshot();
//! assert_eq!(snap.counter("demo.items"), 3);
//! assert_eq!(snap.spans_named("demo.work"), 1);
//! // Loadable in chrome://tracing or https://ui.perfetto.dev:
//! let trace = snap.to_chrome_trace();
//! assert!(obsv::json::parse(&trace).is_ok());
//! ```

#![forbid(unsafe_code)]

pub mod collector;
mod diff;
pub mod health;
pub mod hist;
pub mod json;
mod sink;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

pub use collector::{Collector, Snapshot};
pub use health::{HealthProbe, HealthReport};
pub use hist::{Histogram, HistogramSnapshot};

/// A finished span: a named, timed region of work on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"mvasd.step"`).
    pub name: &'static str,
    /// Optional per-instance label (e.g. `"n=1500"`).
    pub label: Option<String>,
    /// Stable per-thread index (assigned on first use, starting at 1).
    pub thread: u64,
    /// Nesting depth on the emitting thread (0 = top level).
    pub depth: u16,
    /// Start time in nanoseconds since the process observability epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// The event sink every instrumentation call fans into.
///
/// Implementations must be cheap and thread-safe: solver inner loops call
/// these methods. [`Collector`] aggregates; a unit-struct no-op
/// ([`NoopRecorder`]) documents the disabled behaviour (though the real
/// disabled path short-circuits before any trait dispatch).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);
    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);
    /// Records one value into the named log-linear histogram.
    fn observe(&self, name: &str, value: u64);
    /// Records a finished span.
    fn record_span(&self, span: SpanRecord);
}

/// A recorder that drops everything. Installing it is equivalent to (but
/// marginally slower than) installing nothing at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: u64) {}
    fn record_span(&self, _span: SpanRecord) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_INDEX: Cell<u64> = const { Cell::new(0) };
    static SPAN_DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// The process-wide time origin for span timestamps. Pinned the first time
/// a recorder is installed, so all `start_ns` values share one epoch.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Stable small integer identifying the calling thread (first use = 1).
fn current_thread() -> u64 {
    THREAD_INDEX.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// Whether a recorder is installed. One relaxed atomic load — the fast
/// path every instrumentation call takes when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global sink and enables
/// instrumentation. Replaces any previous recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    let _ = epoch();
    let mut slot = RECORDER.write().unwrap_or_else(|p| p.into_inner());
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Disables instrumentation and returns the previously installed recorder,
/// if any.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::Release);
    let mut slot = RECORDER.write().unwrap_or_else(|p| p.into_inner());
    slot.take()
}

/// Installs `recorder` for the lifetime of the returned guard, restoring
/// the previous recorder (or the disabled state) on drop. The pattern for
/// tests and scoped capture sessions.
///
/// The recorder is process-global: tests that install one must serialize
/// against each other (one `Mutex<()>` per test binary does it).
#[must_use = "the recorder is uninstalled when the guard drops"]
pub fn scoped(recorder: Arc<dyn Recorder>) -> ScopedRecorder {
    let _ = epoch();
    let mut slot = RECORDER.write().unwrap_or_else(|p| p.into_inner());
    let prev = slot.replace(recorder);
    ENABLED.store(true, Ordering::Release);
    ScopedRecorder { prev: Some(prev) }
}

/// Guard returned by [`scoped`]; restores the previous recorder on drop.
pub struct ScopedRecorder {
    /// `Some(prev)` until dropped; `prev` itself is `None` when nothing
    /// was installed before.
    prev: Option<Option<Arc<dyn Recorder>>>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            let mut slot = RECORDER.write().unwrap_or_else(|p| p.into_inner());
            ENABLED.store(prev.is_some(), Ordering::Release);
            *slot = prev;
        }
    }
}

/// Runs `f` against the installed recorder, if any.
fn with_recorder<R>(f: impl FnOnce(&dyn Recorder) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let slot = RECORDER.read().unwrap_or_else(|p| p.into_inner());
    slot.as_deref().map(f)
}

/// Adds `delta` to the named counter (no-op when disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        with_recorder(|r| r.counter(name, delta));
    }
}

/// Sets the named gauge (no-op when disabled).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        with_recorder(|r| r.gauge(name, value));
    }
}

/// Records a value into the named histogram (no-op when disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        with_recorder(|r| r.observe(name, value));
    }
}

/// Records a duration (as nanoseconds) into the named histogram.
#[inline]
pub fn observe_duration(name: &str, d: Duration) {
    if enabled() {
        observe(name, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Opens a span named `name`; it closes (and is recorded) when the
/// returned guard drops. Inert — no clock read — when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    Span::begin(name, None)
}

/// Like [`span`], with a lazily built label: the closure only runs when a
/// recorder is installed, so formatting costs nothing when disabled.
#[inline]
pub fn span_with<F: FnOnce() -> String>(name: &'static str, label: F) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    Span::begin(name, Some(label()))
}

/// An open span; records itself on drop. Obtain via [`span`]/[`span_with`].
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    label: Option<String>,
    thread: u64,
    depth: u16,
    start: Instant,
}

impl Span {
    fn begin(name: &'static str, label: Option<String>) -> Self {
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        Span {
            active: Some(ActiveSpan {
                name,
                label,
                thread: current_thread(),
                depth,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur = a.start.elapsed();
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let start_ns = u64::try_from(a.start.saturating_duration_since(epoch()).as_nanos())
                .unwrap_or(u64::MAX);
            let record = SpanRecord {
                name: a.name,
                label: a.label,
                thread: a.thread,
                depth: a.depth,
                start_ns,
                dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            };
            with_recorder(move |r| r.record_span(record));
        }
    }
}

/// A locally-buffered counter for tight solver loops: increments accumulate
/// in a plain field and are flushed to the installed recorder every `every`
/// calls (and on drop), so a hot path pays one relaxed atomic load plus a
/// couple of integer ops per step instead of a recorder dispatch.
///
/// Batching trades away exactness mid-flight: a snapshot taken between
/// flushes can lag by up to `every - 1` increments. Use it for high-volume
/// throughput counters (`conv.workspace.extend`), not for counters that
/// tests assert exact values on (`solver.steps` stays unbatched).
#[derive(Debug)]
pub struct CounterBatch {
    name: &'static str,
    every: u64,
    pending: u64,
    calls: u64,
}

impl CounterBatch {
    /// Creates a batched counter that flushes every `every` calls.
    /// `every = 0` is treated as 1 (flush on every call).
    pub fn new(name: &'static str, every: u64) -> Self {
        Self {
            name,
            every: every.max(1),
            pending: 0,
            calls: 0,
        }
    }

    /// Adds `delta` locally; flushes to the recorder on the batch boundary.
    #[inline]
    pub fn add(&mut self, delta: u64) {
        if !enabled() {
            // Drop increments while disabled so a recorder installed later
            // doesn't inherit counts from the uninstrumented era.
            self.pending = 0;
            self.calls = 0;
            return;
        }
        self.pending += delta;
        self.calls += 1;
        if self.calls >= self.every {
            self.flush();
        }
    }

    /// Pushes any buffered increments to the recorder immediately.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            counter(self.name, self.pending);
        }
        self.pending = 0;
        self.calls = 0;
    }
}

impl Drop for CounterBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Clone for CounterBatch {
    /// Clones reset the buffer: a snapshot of a solver mid-batch must not
    /// double-count the pending increments when both copies later flush.
    fn clone(&self) -> Self {
        Self::new(self.name, self.every)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Mutex;

    /// Serializes tests that install the process-global recorder.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let _g = test_support::lock();
        assert!(!enabled());
        counter("x", 1);
        gauge("g", 1.0);
        observe("h", 7);
        let s = span("dead");
        drop(s);
        // span_with must not evaluate its label when disabled.
        let _s = span_with("dead", || panic!("label built while disabled"));
    }

    #[test]
    fn scoped_install_restores_previous_state() {
        let _g = test_support::lock();
        assert!(!enabled());
        let outer = Arc::new(Collector::new());
        {
            let _a = scoped(outer.clone());
            assert!(enabled());
            counter("outer", 1);
            {
                let inner = Arc::new(Collector::new());
                let _b = scoped(inner.clone());
                counter("inner", 1);
                assert_eq!(inner.snapshot().counter("inner"), 1);
            }
            // Back to the outer collector.
            counter("outer", 1);
        }
        assert!(!enabled());
        let snap = outer.snapshot();
        assert_eq!(snap.counter("outer"), 2);
        assert_eq!(snap.counter("inner"), 0);
    }

    #[test]
    fn install_and_uninstall() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        install(c.clone());
        assert!(enabled());
        counter("k", 5);
        let back = uninstall().expect("a recorder was installed");
        assert!(!enabled());
        // The returned recorder is the very collector we installed.
        back.counter("k", 1);
        assert_eq!(c.snapshot().counter("k"), 6);
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = scoped(c.clone());
        {
            let _outer = span("outer");
            let _inner = span_with("inner", || "lbl".to_string());
        }
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.label.as_deref(), Some("lbl"));
        assert_eq!(inner.thread, outer.thread);
        // Inner starts at/after outer and ends within it.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn counter_batch_flushes_on_boundary_and_drop() {
        let _g = test_support::lock();
        let c = Arc::new(Collector::new());
        let _guard = scoped(c.clone());
        let mut b = CounterBatch::new("batched", 4);
        for _ in 0..7 {
            b.add(1);
        }
        // One full batch of 4 flushed; 3 still buffered.
        assert_eq!(c.snapshot().counter("batched"), 4);
        drop(b);
        assert_eq!(c.snapshot().counter("batched"), 7);
    }

    #[test]
    fn counter_batch_discards_disabled_increments_and_clone_resets() {
        let _g = test_support::lock();
        assert!(!enabled());
        let mut b = CounterBatch::new("batched2", 8);
        b.add(5);
        let c = Arc::new(Collector::new());
        {
            let _guard = scoped(c.clone());
            b.add(1);
            let clone = b.clone();
            drop(clone); // a clone carries no pending increments
            drop(b);
        }
        assert_eq!(c.snapshot().counter("batched2"), 1);
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let _g = test_support::lock();
        let _guard = scoped(Arc::new(NoopRecorder));
        counter("a", 1);
        gauge("b", 2.0);
        observe("c", 3);
        observe_duration("d", Duration::from_micros(4));
        drop(span("e"));
    }
}
