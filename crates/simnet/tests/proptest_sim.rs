//! Property-based validation of the discrete-event simulator against exact
//! analysis: for randomly drawn product-form networks, the simulator's
//! steady-state estimates must track the exact MVA recursion.
//!
//! Runs on the in-house deterministic harness (`mvasd_numerics::propcheck`).

use mvasd_numerics::propcheck::{check, Config};
use mvasd_simnet::{Distribution, SimConfig, SimNetwork, SimStation, Simulation};

/// Exact single-server MVA (inline; avoids a dev-dependency cycle).
fn exact_mva_x_r(demands: &[f64], z: f64, n: usize) -> (f64, f64) {
    let mut q = vec![0.0f64; demands.len()];
    let (mut x, mut r_total) = (0.0, 0.0);
    for pop in 1..=n {
        let r: Vec<f64> = demands
            .iter()
            .zip(q.iter())
            .map(|(d, qk)| d * (1.0 + qk))
            .collect();
        r_total = r.iter().sum();
        x = pop as f64 / (r_total + z);
        for (qk, rk) in q.iter_mut().zip(r.iter()) {
            *qk = x * rk;
        }
    }
    (x, r_total)
}

#[test]
fn simulator_tracks_exact_mva() {
    // DES runs are comparatively expensive; a handful of random cases per
    // run is plenty (each case exercises thousands of events).
    check(
        "simulator_tracks_exact_mva",
        &Config::default().cases(8),
        |g| {
            let demands = g.vec_f64(1, 3, 0.005, 0.05);
            let z = g.f64_in(0.2, 2.0);
            let n = g.usize_in(5, 39);
            let seed = g.raw() % 1000;
            let stations: Vec<SimStation> = demands
                .iter()
                .enumerate()
                .map(|(i, &d)| SimStation::queueing(&format!("s{i}"), 1, d))
                .collect();
            let net = SimNetwork::new(stations, Distribution::Exponential { mean: z }).unwrap();
            let rep = Simulation::new(
                net,
                SimConfig {
                    customers: n,
                    horizon: 2500.0,
                    warmup: 500.0,
                    seed,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap();

            let (x_exact, r_exact) = exact_mva_x_r(&demands, z, n);
            let rel_x = (rep.system.throughput - x_exact).abs() / x_exact;
            assert!(
                rel_x < 0.05,
                "X sim {} vs exact {}",
                rep.system.throughput,
                x_exact
            );
            // Response is noisier, especially when tiny; allow a wider band.
            let rel_r = (rep.system.mean_response - r_exact).abs() / r_exact.max(1e-3);
            assert!(
                rel_r < 0.15,
                "R sim {} vs exact {}",
                rep.system.mean_response,
                r_exact
            );

            // Operational laws hold on the measurements themselves.
            for (k, &d) in demands.iter().enumerate() {
                let u = rep.stations[k].utilization;
                assert!(
                    (u - rep.system.throughput * d).abs() < 0.05,
                    "utilization law k={k}"
                );
                assert!(u <= 1.0 + 1e-9);
            }
            // Population conservation: E[at stations] + X·Z = N.
            let at_stations: f64 = rep.stations.iter().map(|s| s.mean_queue).sum();
            let thinking = rep.system.throughput * z;
            assert!(
                (at_stations + thinking - n as f64).abs() < 0.06 * n as f64,
                "conservation: {} + {} vs {}",
                at_stations,
                thinking,
                n
            );
        },
    );
}

#[test]
fn seeded_runs_are_deterministic() {
    check(
        "seeded_runs_are_deterministic",
        &Config::default().cases(8),
        |g| {
            let demand = g.f64_in(0.005, 0.05);
            let n = g.usize_in(1, 29);
            let seed = g.raw() % 100;
            let mk = || {
                let net = SimNetwork::new(
                    vec![SimStation::queueing("s", 2, demand)],
                    Distribution::Exponential { mean: 1.0 },
                )
                .unwrap();
                Simulation::new(
                    net,
                    SimConfig {
                        customers: n,
                        horizon: 300.0,
                        warmup: 30.0,
                        seed,
                        ..SimConfig::default()
                    },
                )
                .unwrap()
                .run()
                .unwrap()
            };
            let (a, b) = (mk(), mk());
            assert_eq!(a.system, b.system);
            assert_eq!(a.stations, b.stations);
        },
    );
}
