//! The future-event list.
//!
//! A binary min-heap keyed on `(time, sequence)`; the monotonically
//! increasing sequence number makes simultaneous events deterministic, which
//! keeps seeded runs exactly reproducible across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A customer enters the system for the first time (ramp-up).
    CustomerArrives {
        /// Customer index.
        customer: usize,
    },
    /// A customer finishes thinking and starts its next interaction.
    ThinkDone {
        /// Customer index.
        customer: usize,
    },
    /// A service completes at a station.
    ServiceDone {
        /// Station index.
        station: usize,
        /// Customer index.
        customer: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; ties broken by insertion order.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `time` (must be finite).
    pub(crate) fn schedule(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub(crate) fn pop(&mut self) -> Option<(f64, EventKind)> {
        self.heap.pop().map(|s| (s.time, s.kind))
    }

    /// Number of pending events.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, EventKind::ThinkDone { customer: 2 });
        q.schedule(1.0, EventKind::CustomerArrives { customer: 0 });
        q.schedule(2.0, EventKind::ThinkDone { customer: 1 });
        let t1 = q.pop().unwrap();
        let t2 = q.pop().unwrap();
        let t3 = q.pop().unwrap();
        assert_eq!(t1.0, 1.0);
        assert_eq!(t2.0, 2.0);
        assert_eq!(t3.0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::CustomerArrives { customer: 10 });
        q.schedule(5.0, EventKind::CustomerArrives { customer: 11 });
        q.schedule(5.0, EventKind::CustomerArrives { customer: 12 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                EventKind::CustomerArrives { customer } => customer,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, EventKind::CustomerArrives { customer: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
