//! # mvasd-simnet
//!
//! Discrete-event simulator for closed queueing networks — the workspace's
//! substitute for the paper's physical testbed (16-core Linux servers driven
//! by The Grinder).
//!
//! The simulated system matches the analytic model of paper Fig. 2: `N`
//! customers cycle between a think stage and a chain of service stations
//! (multi-server FCFS queues for CPUs, single-server queues for disks and
//! NICs). Service times are sampled from configurable distributions
//! (exponential by default, which keeps the network product-form and hence
//! MVA-comparable; deterministic/Erlang variants exist for robustness
//! studies). Customers can be given staggered start times to reproduce the
//! ramp-up transient of the paper's Fig. 1.
//!
//! Two opt-in realism knobs go beyond the product-form world: in-run
//! [`ContentionModel`]s (service inflating with the local queue — software
//! locks no analytic model here can represent) and vmstat-style sampled
//! utilization timelines ([`SimReport::utilization_timeline`]).
//!
//! The crate knows nothing about web applications or demand curves: the
//! testbed crate evaluates its concurrency-dependent demand models at each
//! tested population and hands this simulator a fully specified network per
//! run — mirroring how the real lab measured one concurrency level per load
//! test.
//!
//! ## Example
//!
//! ```
//! use mvasd_simnet::{SimNetwork, SimStation, Distribution, Simulation, SimConfig};
//!
//! let net = SimNetwork::new(
//!     vec![
//!         SimStation::queueing("cpu", 4, 0.008),
//!         SimStation::queueing("disk", 1, 0.012),
//!     ],
//!     Distribution::Exponential { mean: 1.0 }, // think time
//! )
//! .unwrap();
//! let report = Simulation::new(net, SimConfig {
//!     customers: 50,
//!     horizon: 200.0,
//!     warmup: 20.0,
//!     seed: 7,
//!     ..SimConfig::default()
//! })
//! .unwrap()
//! .run()
//! .unwrap();
//! assert!(report.system.throughput > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contention;
mod engine;
mod event;
mod metrics;
mod rng;
mod station;

pub use contention::ContentionModel;
pub use engine::{SimConfig, Simulation};
pub use metrics::{SimReport, StationStats, SystemStats, TimeSeriesBucket};
pub use rng::Distribution;
pub use station::{SimNetwork, SimStation, StationModel};

/// Errors from simulation construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value was outside its legal domain.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// The network has no stations.
    EmptyNetwork,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SimError::EmptyNetwork => write!(f, "network has no stations"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!SimError::EmptyNetwork.to_string().is_empty());
        assert!(!SimError::InvalidParameter { what: "x" }
            .to_string()
            .is_empty());
    }
}
