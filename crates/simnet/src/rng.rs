//! Service-time and think-time distributions.
//!
//! Exponential is the default (product-form, MVA-comparable). The Grinder's
//! `grinder.sleepTimeVariation` varies sleep times "according to a Normal
//! distribution with specified variance", reproduced by
//! [`Distribution::NormalClamped`]. Deterministic and Erlang-k cover the
//! low-variance end for robustness studies.

use mvasd_numerics::rng::Xoshiro256pp;

/// A non-negative random-variate family with a configurable mean.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Exponential with the given mean (rate `1/mean`).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Always exactly `value`.
    Deterministic {
        /// The constant value.
        value: f64,
    },
    /// Erlang with `k` stages and the given overall mean (variance
    /// `mean²/k`) — interpolates between exponential (`k = 1`) and
    /// deterministic (`k → ∞`).
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Overall mean.
        mean: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation, resampled-free:
    /// values are clamped at zero (The Grinder's sleep-time model).
    NormalClamped {
        /// Mean before clamping.
        mean: f64,
        /// Standard deviation before clamping.
        std_dev: f64,
    },
}

impl Distribution {
    /// The configured mean (before clamping, for `NormalClamped`).
    pub fn mean(&self) -> f64 {
        match self {
            Distribution::Exponential { mean } => *mean,
            Distribution::Deterministic { value } => *value,
            Distribution::Erlang { mean, .. } => *mean,
            Distribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            Distribution::NormalClamped { mean, .. } => *mean,
        }
    }

    /// Returns a copy rescaled to the given mean (shape preserved). Used by
    /// the testbed to re-aim a station's service distribution at the demand
    /// interpolated for the current concurrency level.
    pub fn with_mean(&self, new_mean: f64) -> Distribution {
        match self {
            Distribution::Exponential { .. } => Distribution::Exponential { mean: new_mean },
            Distribution::Deterministic { .. } => Distribution::Deterministic { value: new_mean },
            Distribution::Erlang { k, .. } => Distribution::Erlang {
                k: *k,
                mean: new_mean,
            },
            Distribution::Uniform { lo, hi } => {
                let old_mean = 0.5 * (lo + hi);
                let scale = if old_mean > 0.0 {
                    new_mean / old_mean
                } else {
                    0.0
                };
                Distribution::Uniform {
                    lo: lo * scale,
                    hi: hi * scale,
                }
            }
            Distribution::NormalClamped { mean, std_dev } => {
                let scale = if *mean > 0.0 { new_mean / mean } else { 0.0 };
                Distribution::NormalClamped {
                    mean: new_mean,
                    std_dev: std_dev * scale,
                }
            }
        }
    }

    /// Validates parameters (finite, non-negative, `lo ≤ hi`, `k ≥ 1`).
    pub fn validate(&self) -> Result<(), crate::SimError> {
        let ok = match self {
            Distribution::Exponential { mean } => mean.is_finite() && *mean >= 0.0,
            Distribution::Deterministic { value } => value.is_finite() && *value >= 0.0,
            Distribution::Erlang { k, mean } => *k >= 1 && mean.is_finite() && *mean >= 0.0,
            Distribution::Uniform { lo, hi } => {
                lo.is_finite() && hi.is_finite() && *lo >= 0.0 && lo <= hi
            }
            Distribution::NormalClamped { mean, std_dev } => {
                mean.is_finite() && std_dev.is_finite() && *mean >= 0.0 && *std_dev >= 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(crate::SimError::InvalidParameter {
                what: "distribution parameters out of domain",
            })
        }
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        match self {
            Distribution::Exponential { mean } => rng.exponential(*mean),
            Distribution::Deterministic { value } => *value,
            Distribution::Erlang { k, mean } => {
                // lint: float-eq-ok zero mean is an exact degenerate-input sentinel
                if *mean == 0.0 {
                    return 0.0;
                }
                let stage_mean = mean / *k as f64;
                (0..*k).map(|_| rng.exponential(stage_mean)).sum()
            }
            Distribution::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            Distribution::NormalClamped { mean, std_dev } => rng.normal(*mean, *std_dev).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Distribution::Exponential { mean: 0.25 };
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 0.25).abs() < 0.005, "got {m}");
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Distribution::Deterministic { value: 3.5 };
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn erlang_mean_and_lower_variance() {
        let e1 = Distribution::Exponential { mean: 1.0 };
        let e4 = Distribution::Erlang { k: 4, mean: 1.0 };
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        let s1: Vec<f64> = (0..n).map(|_| e1.sample(&mut rng)).collect();
        let s4: Vec<f64> = (0..n).map(|_| e4.sample(&mut rng)).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64]| {
            let m = mean(v);
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!((mean(&s4) - 1.0).abs() < 0.02);
        assert!(
            var(&s4) < var(&s1) / 2.0,
            "Erlang-4 must have ~1/4 variance"
        );
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = Distribution::Uniform { lo: 1.0, hi: 2.0 };
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=2.0).contains(&x));
        }
        assert!((sample_mean(&d, 100_000, 5) - 1.5).abs() < 0.01);
    }

    #[test]
    fn normal_clamped_nonnegative() {
        let d = Distribution::NormalClamped {
            mean: 0.1,
            std_dev: 0.5,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn with_mean_rescales_all_families() {
        for d in [
            Distribution::Exponential { mean: 2.0 },
            Distribution::Deterministic { value: 2.0 },
            Distribution::Erlang { k: 3, mean: 2.0 },
            Distribution::Uniform { lo: 1.0, hi: 3.0 },
            Distribution::NormalClamped {
                mean: 2.0,
                std_dev: 0.2,
            },
        ] {
            let r = d.with_mean(0.5);
            assert!((r.mean() - 0.5).abs() < 1e-12, "{d:?} -> {r:?}");
        }
    }

    #[test]
    fn zero_mean_samples_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert_eq!(
            Distribution::Exponential { mean: 0.0 }.sample(&mut rng),
            0.0
        );
        assert_eq!(
            Distribution::Erlang { k: 2, mean: 0.0 }.sample(&mut rng),
            0.0
        );
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Distribution::Exponential { mean: -1.0 }.validate().is_err());
        assert!(Distribution::Erlang { k: 0, mean: 1.0 }.validate().is_err());
        assert!(Distribution::Uniform { lo: 2.0, hi: 1.0 }
            .validate()
            .is_err());
        assert!(Distribution::NormalClamped {
            mean: f64::NAN,
            std_dev: 1.0
        }
        .validate()
        .is_err());
        assert!(Distribution::Exponential { mean: 1.0 }.validate().is_ok());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let d = Distribution::Exponential { mean: 1.0 };
        assert_eq!(sample_mean(&d, 1000, 42), sample_mean(&d, 1000, 42));
        assert_ne!(sample_mean(&d, 1000, 42), sample_mean(&d, 1000, 43));
    }
}
