//! In-run contention: queue-length-dependent service inflation.
//!
//! The testbed's primary varying-demand mechanism is *across* runs (demand
//! curves evaluated at each tested population, exactly like the paper's
//! per-level load tests). This module adds the complementary *within-run*
//! mechanism: a station whose effective service time inflates with its own
//! instantaneous queue length — lock convoys, cache thrash, elevated
//! context-switch rates. Product-form analysis cannot capture it (service
//! depends on local state), which makes it useful for robustness studies:
//! how badly do MVA/MVASD degrade when the real system violates their
//! assumptions? (`SimStation::with_contention` opts in; the default is
//! none, keeping the validation testbed product-form.)

/// Queue-length-dependent service-time multiplier.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentionModel {
    /// `1 + slope · max(0, q − threshold)`: service inflates linearly once
    /// more than `threshold` customers are present, capped at `max_factor`.
    LinearBeyond {
        /// Queue length at which inflation starts.
        threshold: usize,
        /// Relative inflation per extra customer.
        slope: f64,
        /// Upper bound on the multiplier.
        max_factor: f64,
    },
    /// Arbitrary table: multiplier for queue length `q` is
    /// `table[min(q, len−1)]` (1-indexed by customers present; entry 0 is
    /// the multiplier with a single customer).
    Table(Vec<f64>),
}

impl ContentionModel {
    /// Multiplier applied to a sampled service time when `q ≥ 1` customers
    /// (including the one entering service) are at the station.
    pub fn factor(&self, q: usize) -> f64 {
        match self {
            ContentionModel::LinearBeyond {
                threshold,
                slope,
                max_factor,
            } => {
                let excess = q.saturating_sub(*threshold) as f64;
                (1.0 + slope * excess).min(*max_factor)
            }
            ContentionModel::Table(t) => t[(q.saturating_sub(1)).min(t.len() - 1)],
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        let ok = match self {
            ContentionModel::LinearBeyond {
                slope, max_factor, ..
            } => slope.is_finite() && *slope >= 0.0 && max_factor.is_finite() && *max_factor >= 1.0,
            ContentionModel::Table(t) => {
                !t.is_empty() && t.iter().all(|f| f.is_finite() && *f > 0.0)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(crate::SimError::InvalidParameter {
                what: "contention model parameters out of domain",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_beyond_threshold() {
        let m = ContentionModel::LinearBeyond {
            threshold: 4,
            slope: 0.1,
            max_factor: 2.0,
        };
        assert_eq!(m.factor(1), 1.0);
        assert_eq!(m.factor(4), 1.0);
        assert!((m.factor(5) - 1.1).abs() < 1e-12);
        assert!((m.factor(9) - 1.5).abs() < 1e-12);
        assert_eq!(m.factor(100), 2.0); // capped
    }

    #[test]
    fn table_lookup_clamps() {
        let m = ContentionModel::Table(vec![1.0, 1.2, 1.5]);
        assert_eq!(m.factor(1), 1.0);
        assert_eq!(m.factor(2), 1.2);
        assert_eq!(m.factor(3), 1.5);
        assert_eq!(m.factor(50), 1.5);
        assert_eq!(m.factor(0), 1.0); // degenerate: treated as 1 customer
    }

    #[test]
    fn validation() {
        assert!(ContentionModel::LinearBeyond {
            threshold: 0,
            slope: 0.1,
            max_factor: 3.0
        }
        .validate()
        .is_ok());
        assert!(ContentionModel::LinearBeyond {
            threshold: 0,
            slope: -0.1,
            max_factor: 3.0
        }
        .validate()
        .is_err());
        assert!(ContentionModel::LinearBeyond {
            threshold: 0,
            slope: 0.1,
            max_factor: 0.5
        }
        .validate()
        .is_err());
        assert!(ContentionModel::Table(vec![]).validate().is_err());
        assert!(ContentionModel::Table(vec![1.0, 0.0]).validate().is_err());
        assert!(ContentionModel::Table(vec![1.0, 1.1]).validate().is_ok());
    }
}
