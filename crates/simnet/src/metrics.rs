//! Measurement collection: steady-state accumulators (post-warm-up) plus the
//! full-run time series used to reproduce the ramp-up transient of the
//! paper's Fig. 1.

/// Steady-state statistics of one station.
#[derive(Debug, Clone, PartialEq)]
pub struct StationStats {
    /// Station label.
    pub name: String,
    /// Per-server utilization: busy server-time / (elapsed · servers).
    /// For delay stations: mean number in service.
    pub utilization: f64,
    /// Completions per second at the station.
    pub throughput: f64,
    /// Time-averaged number of customers at the station (queued + served).
    pub mean_queue: f64,
    /// Mean time per visit (wait + service).
    pub mean_visit_time: f64,
}

/// Steady-state system statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Completed interactions per second.
    pub throughput: f64,
    /// Mean end-to-end interaction response time (excluding think).
    pub mean_response: f64,
    /// 95th percentile of interaction response times.
    pub p95_response: f64,
    /// Number of completed interactions measured.
    pub completions: u64,
}

/// One bucket of the full-run time series (`Fig. 1`-style output; includes
/// the warm-up transient).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSeriesBucket {
    /// Bucket start time (seconds since simulation start).
    pub start: f64,
    /// Interactions completed per second within the bucket.
    pub tps: f64,
    /// Mean response time of interactions completed within the bucket
    /// (0 when none completed).
    pub mean_response: f64,
}

/// Full report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Wall-clock horizon simulated.
    pub horizon: f64,
    /// Warm-up prefix excluded from steady-state statistics.
    pub warmup: f64,
    /// System-level steady-state statistics.
    pub system: SystemStats,
    /// Per-station steady-state statistics (network order).
    pub stations: Vec<StationStats>,
    /// Whole-run completion time series.
    pub time_series: Vec<TimeSeriesBucket>,
    /// Whole-run per-station busy server-time per time-series bucket
    /// (`busy_series[k][b]`, in server-seconds) — the raw material of a
    /// vmstat/iostat-style sampled utilization timeline.
    pub busy_series: Vec<Vec<f64>>,
    /// Width of the time-series buckets (seconds).
    pub bucket_width: f64,
    /// Per-station server counts (`usize::MAX` = delay station), needed to
    /// normalize the busy series into utilizations.
    pub station_servers: Vec<usize>,
    /// Raw post-warm-up response-time samples (for batch-means CIs).
    pub response_samples: Vec<f64>,
}

impl SimReport {
    /// Utilization of station `k`.
    pub fn utilization(&self, k: usize) -> f64 {
        self.stations[k].utilization
    }

    /// Batch-means 95 % half-width of the mean response estimate, if enough
    /// samples were collected.
    pub fn response_ci(&self, batches: usize) -> Option<mvasd_numerics::stats::BatchMeansEstimate> {
        let est = mvasd_numerics::stats::batch_means(&self.response_samples, batches).ok()?;
        if mvasd_obsv::enabled() && est.mean > 0.0 {
            // DES health floor: relative CI half-width of the response
            // estimate. Wide intervals mean the run is too short to trust.
            mvasd_obsv::gauge("health.simnet.ci_rel_width", est.half_width / est.mean);
        }
        Some(est)
    }

    /// vmstat/iostat-style sampled utilization timeline of station `k`:
    /// one per-server utilization value per time-series bucket (including
    /// the warm-up transient). Delay stations report mean jobs in service.
    pub fn utilization_timeline(&self, k: usize) -> Vec<f64> {
        let servers = self.station_servers[k];
        let denom = if servers == usize::MAX {
            self.bucket_width
        } else {
            self.bucket_width * servers as f64
        };
        self.busy_series[k].iter().map(|b| b / denom).collect()
    }
}

/// Internal accumulator used by the engine.
#[derive(Debug)]
pub(crate) struct Accumulators {
    pub warmup: f64,
    pub horizon: f64,
    pub last_time: f64,
    /// Per-station busy server count right now.
    pub busy: Vec<usize>,
    /// Per-station customer count right now (queued + in service).
    pub at_station: Vec<usize>,
    /// Integral of busy servers over post-warm-up time.
    pub busy_time: Vec<f64>,
    /// Integral of station population over post-warm-up time.
    pub queue_time: Vec<f64>,
    /// Post-warm-up visit completions per station.
    pub visits: Vec<u64>,
    /// Sum of per-visit sojourn (wait+service) post-warm-up.
    pub visit_time_sum: Vec<f64>,
    /// Post-warm-up interaction completions.
    pub completions: u64,
    /// Sum of interaction response times post-warm-up.
    pub response_sum: f64,
    /// Response samples post-warm-up.
    pub samples: Vec<f64>,
    /// Whole-run time-series buckets.
    pub bucket_width: f64,
    pub bucket_counts: Vec<u64>,
    pub bucket_response: Vec<f64>,
    /// Per-station busy server-seconds per bucket (whole run).
    pub bucket_busy: Vec<Vec<f64>>,
}

impl Accumulators {
    pub(crate) fn new(k: usize, warmup: f64, horizon: f64, bucket_width: f64) -> Self {
        let buckets = (horizon / bucket_width).ceil() as usize + 1;
        Self {
            warmup,
            horizon,
            last_time: 0.0,
            busy: vec![0; k],
            at_station: vec![0; k],
            busy_time: vec![0.0; k],
            queue_time: vec![0.0; k],
            visits: vec![0; k],
            visit_time_sum: vec![0.0; k],
            completions: 0,
            response_sum: 0.0,
            samples: Vec::new(),
            bucket_width,
            bucket_counts: vec![0; buckets],
            bucket_response: vec![0.0; buckets],
            bucket_busy: vec![vec![0.0; buckets]; k],
        }
    }

    /// Advances the clock to `now`, accumulating time-weighted state over
    /// the post-warm-up, pre-horizon part of the interval.
    pub(crate) fn advance(&mut self, now: f64) {
        let lo = self.last_time.max(self.warmup);
        let hi = now.min(self.horizon);
        if hi > lo {
            let dt = hi - lo;
            for k in 0..self.busy.len() {
                self.busy_time[k] += dt * self.busy[k] as f64;
                self.queue_time[k] += dt * self.at_station[k] as f64;
            }
        }
        // Whole-run busy timeline (includes warm-up, clipped at horizon):
        // split the interval across the buckets it spans.
        let tl_lo = self.last_time.min(self.horizon);
        let tl_hi = now.min(self.horizon);
        if tl_hi > tl_lo {
            let w = self.bucket_width;
            let mut b = (tl_lo / w) as usize;
            let last_bucket = self.bucket_busy.first().map(|v| v.len()).unwrap_or(0);
            while b < last_bucket {
                let b_start = b as f64 * w;
                let b_end = b_start + w;
                let overlap = tl_hi.min(b_end) - tl_lo.max(b_start);
                if overlap <= 0.0 {
                    break;
                }
                for k in 0..self.busy.len() {
                    self.bucket_busy[k][b] += overlap * self.busy[k] as f64;
                }
                b += 1;
            }
        }
        self.last_time = now;
    }

    /// Records a completed interaction at time `t` with response `r`.
    pub(crate) fn record_completion(&mut self, t: f64, r: f64) {
        if t >= self.warmup && t <= self.horizon {
            self.completions += 1;
            self.response_sum += r;
            self.samples.push(r);
        }
        let b = (t / self.bucket_width) as usize;
        if b < self.bucket_counts.len() {
            self.bucket_counts[b] += 1;
            self.bucket_response[b] += r;
        }
    }

    /// Records a completed station visit with sojourn `w` at time `t`.
    pub(crate) fn record_visit(&mut self, k: usize, t: f64, w: f64) {
        if t >= self.warmup && t <= self.horizon {
            self.visits[k] += 1;
            self.visit_time_sum[k] += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_respects_warmup_and_horizon() {
        let mut a = Accumulators::new(1, 10.0, 100.0, 1.0);
        a.busy[0] = 1;
        a.at_station[0] = 2;
        a.advance(5.0); // entirely inside warm-up: nothing accumulated
        assert_eq!(a.busy_time[0], 0.0);
        a.advance(20.0); // 10 post-warm-up seconds
        assert!((a.busy_time[0] - 10.0).abs() < 1e-12);
        assert!((a.queue_time[0] - 20.0).abs() < 1e-12);
        a.advance(200.0); // clipped at horizon: 80 more seconds
        assert!((a.busy_time[0] - 90.0).abs() < 1e-12);
    }

    #[test]
    fn completions_filtered_but_buckets_cover_whole_run() {
        let mut a = Accumulators::new(1, 10.0, 100.0, 1.0);
        a.record_completion(5.0, 0.2); // warm-up: bucket only
        a.record_completion(50.0, 0.3); // counted everywhere
        assert_eq!(a.completions, 1);
        assert_eq!(a.bucket_counts[5], 1);
        assert_eq!(a.bucket_counts[50], 1);
        assert!((a.response_sum - 0.3).abs() < 1e-12);
    }

    #[test]
    fn visit_recording() {
        let mut a = Accumulators::new(2, 0.0, 10.0, 1.0);
        a.record_visit(1, 5.0, 0.05);
        a.record_visit(1, 20.0, 0.05); // past horizon: ignored
        assert_eq!(a.visits[1], 1);
        assert_eq!(a.visits[0], 0);
    }
}
