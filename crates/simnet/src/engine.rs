//! The discrete-event engine.
//!
//! `N` customers cycle: (optional staggered entry) → station 0 → station 1 →
//! … → station K−1 → think → repeat. Multi-server FCFS queueing, seeded and
//! fully deterministic for a given configuration.

use mvasd_numerics::rng::Xoshiro256pp;
use mvasd_obsv as obsv;
use std::collections::VecDeque;

use crate::event::{EventKind, EventQueue};
use crate::metrics::{Accumulators, SimReport, StationStats, SystemStats, TimeSeriesBucket};
use crate::station::{SimNetwork, StationModel};
use crate::SimError;

/// Run-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of concurrent virtual users `N`.
    pub customers: usize,
    /// Simulated duration (seconds).
    pub horizon: f64,
    /// Prefix excluded from steady-state statistics (seconds).
    pub warmup: f64,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Gap between successive customer entries (seconds). `0` starts all
    /// customers at t = 0; positive values reproduce The Grinder's
    /// `processIncrementInterval`/`initialSleepTime` ramp-up.
    pub stagger: f64,
    /// Width of the time-series buckets (seconds).
    pub bucket_width: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            customers: 1,
            horizon: 100.0,
            warmup: 10.0,
            seed: 0,
            stagger: 0.0,
            bucket_width: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Customer {
    /// Index of the station the customer is currently heading to/at.
    stage: usize,
    /// Start of the in-flight interaction.
    interaction_start: f64,
    /// Time it arrived at the current station (for per-visit sojourn).
    station_arrival: f64,
}

#[derive(Debug, Default)]
struct StationState {
    busy: usize,
    waiting: VecDeque<usize>,
}

/// A configured, runnable simulation.
#[derive(Debug)]
pub struct Simulation {
    net: SimNetwork,
    cfg: SimConfig,
}

impl Simulation {
    /// Validates the configuration and binds it to a network.
    pub fn new(net: SimNetwork, cfg: SimConfig) -> Result<Self, SimError> {
        if cfg.customers == 0 {
            return Err(SimError::InvalidParameter {
                what: "need at least one customer",
            });
        }
        if !(cfg.horizon.is_finite() && cfg.horizon > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "horizon must be finite and > 0",
            });
        }
        if !(cfg.warmup.is_finite() && cfg.warmup >= 0.0 && cfg.warmup < cfg.horizon) {
            return Err(SimError::InvalidParameter {
                what: "warmup must be in [0, horizon)",
            });
        }
        if !(cfg.stagger.is_finite() && cfg.stagger >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "stagger must be finite and >= 0",
            });
        }
        if !(cfg.bucket_width.is_finite() && cfg.bucket_width > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "bucket width must be finite and > 0",
            });
        }
        Ok(Self { net, cfg })
    }

    /// Runs the simulation to its horizon and reports.
    pub fn run(self) -> Result<SimReport, SimError> {
        let _span = obsv::span_with("simnet.run", || {
            format!("customers={} seed={}", self.cfg.customers, self.cfg.seed)
        });
        let mut event_count = 0u64;
        let k_count = self.net.stations().len();
        let mut rng = Xoshiro256pp::seed_from_u64(self.cfg.seed);
        let mut events = EventQueue::new();
        let mut acc = Accumulators::new(
            k_count,
            self.cfg.warmup,
            self.cfg.horizon,
            self.cfg.bucket_width,
        );
        let mut customers = vec![
            Customer {
                stage: 0,
                interaction_start: 0.0,
                station_arrival: 0.0,
            };
            self.cfg.customers
        ];
        let mut stations: Vec<StationState> =
            (0..k_count).map(|_| StationState::default()).collect();

        for c in 0..self.cfg.customers {
            events.schedule(
                c as f64 * self.cfg.stagger,
                EventKind::CustomerArrives { customer: c },
            );
        }

        while let Some((t, kind)) = events.pop() {
            if t > self.cfg.horizon {
                break;
            }
            event_count += 1;
            acc.advance(t);
            match kind {
                EventKind::CustomerArrives { customer } => {
                    customers[customer].interaction_start = t;
                    customers[customer].stage = 0;
                    Self::enter_station(
                        &self.net,
                        &mut stations,
                        &mut customers,
                        &mut acc,
                        &mut events,
                        &mut rng,
                        0,
                        customer,
                        t,
                    );
                }
                EventKind::ThinkDone { customer } => {
                    customers[customer].interaction_start = t;
                    customers[customer].stage = 0;
                    Self::enter_station(
                        &self.net,
                        &mut stations,
                        &mut customers,
                        &mut acc,
                        &mut events,
                        &mut rng,
                        0,
                        customer,
                        t,
                    );
                }
                EventKind::ServiceDone { station, customer } => {
                    // Leave the station.
                    acc.at_station[station] -= 1;
                    acc.record_visit(station, t, t - customers[customer].station_arrival);
                    let st = &mut stations[station];
                    match self.net.stations()[station].model {
                        StationModel::Queueing { .. } => {
                            st.busy -= 1;
                            acc.busy[station] -= 1;
                            if let Some(next) = st.waiting.pop_front() {
                                st.busy += 1;
                                acc.busy[station] += 1;
                                let spec = &self.net.stations()[station];
                                let mut s = spec.service.sample(&mut rng);
                                if let Some(c) = &spec.contention {
                                    s *= c.factor(acc.at_station[station]);
                                }
                                events.schedule(
                                    t + s,
                                    EventKind::ServiceDone {
                                        station,
                                        customer: next,
                                    },
                                );
                            }
                        }
                        StationModel::Delay => {
                            acc.busy[station] -= 1;
                        }
                    }
                    // Move on.
                    let next_stage = customers[customer].stage + 1;
                    if next_stage < k_count {
                        customers[customer].stage = next_stage;
                        Self::enter_station(
                            &self.net,
                            &mut stations,
                            &mut customers,
                            &mut acc,
                            &mut events,
                            &mut rng,
                            next_stage,
                            customer,
                            t,
                        );
                    } else {
                        // Interaction complete.
                        let r = t - customers[customer].interaction_start;
                        acc.record_completion(t, r);
                        let z = self.net.think().sample(&mut rng);
                        events.schedule(t + z, EventKind::ThinkDone { customer });
                    }
                }
            }
        }
        acc.advance(self.cfg.horizon);
        if obsv::enabled() {
            obsv::counter("simnet.runs", 1);
            obsv::counter("simnet.events", event_count);
            obsv::observe("simnet.events_per_run", event_count);
        }

        Ok(self.build_report(acc))
    }

    #[allow(clippy::too_many_arguments)] // static helper threads the engine's split borrows
    fn enter_station(
        net: &SimNetwork,
        stations: &mut [StationState],
        customers: &mut [Customer],
        acc: &mut Accumulators,
        events: &mut EventQueue,
        rng: &mut Xoshiro256pp,
        k: usize,
        customer: usize,
        t: f64,
    ) {
        customers[customer].station_arrival = t;
        acc.at_station[k] += 1;
        let spec = &net.stations()[k];
        match spec.model {
            StationModel::Delay => {
                acc.busy[k] += 1;
                let s = spec.service.sample(rng);
                events.schedule(
                    t + s,
                    EventKind::ServiceDone {
                        station: k,
                        customer,
                    },
                );
            }
            StationModel::Queueing { servers } => {
                let st = &mut stations[k];
                if st.busy < servers {
                    st.busy += 1;
                    acc.busy[k] += 1;
                    let mut s = spec.service.sample(rng);
                    if let Some(c) = &spec.contention {
                        s *= c.factor(acc.at_station[k]);
                    }
                    events.schedule(
                        t + s,
                        EventKind::ServiceDone {
                            station: k,
                            customer,
                        },
                    );
                } else {
                    st.waiting.push_back(customer);
                }
            }
        }
    }

    fn build_report(&self, acc: Accumulators) -> SimReport {
        let measured = (self.cfg.horizon - self.cfg.warmup).max(f64::MIN_POSITIVE);
        let stations = self
            .net
            .stations()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let servers = match s.model {
                    StationModel::Queueing { servers } => servers as f64,
                    StationModel::Delay => f64::INFINITY,
                };
                let utilization = if servers.is_finite() {
                    acc.busy_time[k] / (measured * servers)
                } else {
                    acc.busy_time[k] / measured
                };
                StationStats {
                    name: s.name.clone(),
                    utilization,
                    throughput: acc.visits[k] as f64 / measured,
                    mean_queue: acc.queue_time[k] / measured,
                    mean_visit_time: if acc.visits[k] > 0 {
                        acc.visit_time_sum[k] / acc.visits[k] as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        let mean_response = if acc.completions > 0 {
            acc.response_sum / acc.completions as f64
        } else {
            0.0
        };
        let p95 = mvasd_numerics::stats::percentile(&acc.samples, 95.0).unwrap_or(0.0);

        let time_series = acc
            .bucket_counts
            .iter()
            .zip(acc.bucket_response.iter())
            .enumerate()
            .map(|(i, (&count, &rsum))| TimeSeriesBucket {
                start: i as f64 * acc.bucket_width,
                tps: count as f64 / acc.bucket_width,
                mean_response: if count > 0 { rsum / count as f64 } else { 0.0 },
            })
            .collect();

        SimReport {
            horizon: self.cfg.horizon,
            warmup: self.cfg.warmup,
            system: SystemStats {
                throughput: acc.completions as f64 / measured,
                mean_response,
                p95_response: p95,
                completions: acc.completions,
            },
            stations,
            time_series,
            busy_series: acc.bucket_busy,
            bucket_width: self.cfg.bucket_width,
            station_servers: self
                .net
                .stations()
                .iter()
                .map(|s| match s.model {
                    StationModel::Queueing { servers } => servers,
                    StationModel::Delay => usize::MAX,
                })
                .collect(),
            response_samples: acc.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Distribution;
    use crate::station::SimStation;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    fn run(net: SimNetwork, n: usize, horizon: f64, seed: u64) -> SimReport {
        Simulation::new(
            net,
            SimConfig {
                customers: n,
                horizon,
                warmup: horizon * 0.2,
                seed,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn matches_machine_repair_closed_form() {
        // 1 station, 4 servers, exp service 0.25, exp think 1.0.
        let net = SimNetwork::new(
            vec![SimStation::queueing("st", 4, 0.25)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let rep = run(net, 12, 4000.0, 11);
        let (x_exact, q_exact) = mvasd_numerics::erlang::machine_repair(12, 4, 0.25, 1.0).unwrap();
        assert!(
            rel(rep.system.throughput, x_exact) < 0.03,
            "X {} vs {}",
            rep.system.throughput,
            x_exact
        );
        assert!(
            rel(rep.stations[0].mean_queue, q_exact) < 0.06,
            "Q {} vs {}",
            rep.stations[0].mean_queue,
            q_exact
        );
    }

    #[test]
    fn matches_exact_mva_on_two_station_chain() {
        let net = SimNetwork::new(
            vec![
                SimStation::queueing("cpu", 1, 0.006),
                SimStation::queueing("disk", 1, 0.010),
            ],
            Distribution::Exponential { mean: 0.5 },
        )
        .unwrap();
        let rep = run(net, 40, 3000.0, 5);
        let qnet = mvasd_queueing_testhelper(40);
        assert!(
            rel(rep.system.throughput, qnet.0) < 0.03,
            "X {} vs MVA {}",
            rep.system.throughput,
            qnet.0
        );
        assert!(
            rel(rep.system.mean_response, qnet.1) < 0.06,
            "R {} vs MVA {}",
            rep.system.mean_response,
            qnet.1
        );
    }

    /// Exact MVA for the two-station test network, computed inline to avoid
    /// a circular dev-dependency on mvasd-queueing.
    fn mvasd_queueing_testhelper(n: usize) -> (f64, f64) {
        let demands = [0.006f64, 0.010];
        let z = 0.5;
        let mut q = [0.0f64; 2];
        let (mut x, mut r_total) = (0.0, 0.0);
        for pop in 1..=n {
            let r: Vec<f64> = (0..2).map(|k| demands[k] * (1.0 + q[k])).collect();
            r_total = r.iter().sum();
            x = pop as f64 / (r_total + z);
            for k in 0..2 {
                q[k] = x * r[k];
            }
        }
        (x, r_total)
    }

    #[test]
    fn utilization_law_holds_in_simulation() {
        let net = SimNetwork::new(
            vec![
                SimStation::queueing("cpu", 2, 0.01),
                SimStation::queueing("disk", 1, 0.004),
            ],
            Distribution::Exponential { mean: 0.2 },
        )
        .unwrap();
        let rep = run(net, 20, 2000.0, 9);
        // U_k = X · D_k / C_k (paper eq. 1 + 3).
        let x = rep.system.throughput;
        assert!(rel(rep.stations[0].utilization, x * 0.01 / 2.0) < 0.04);
        assert!(rel(rep.stations[1].utilization, x * 0.004) < 0.04);
    }

    #[test]
    fn littles_law_holds_in_simulation() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let rep = run(net, 30, 3000.0, 13);
        // N = X (R + Z): the sim measures X and R; Z is exact by design.
        let n_est = rep.system.throughput * (rep.system.mean_response + 1.0);
        assert!(rel(n_est, 30.0) < 0.03, "N_est {n_est}");
    }

    #[test]
    fn deterministic_runs_reproduce() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let a = run(net.clone(), 10, 200.0, 77);
        let b = run(net, 10, 200.0, 77);
        assert_eq!(a.system, b.system);
        assert_eq!(a.stations, b.stations);
    }

    #[test]
    fn different_seeds_differ() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let a = run(net.clone(), 10, 200.0, 1);
        let b = run(net, 10, 200.0, 2);
        assert_ne!(a.system.completions, b.system.completions);
    }

    #[test]
    fn ramp_up_visible_in_time_series() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 4, 0.05)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let rep = Simulation::new(
            net,
            SimConfig {
                customers: 60,
                horizon: 300.0,
                warmup: 150.0,
                seed: 3,
                stagger: 1.0, // one customer per second: 60 s ramp
                bucket_width: 5.0,
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let early: f64 = rep.time_series[0..4].iter().map(|b| b.tps).sum();
        let late: f64 = rep.time_series[40..44].iter().map(|b| b.tps).sum();
        assert!(
            early < late * 0.6,
            "ramp-up should depress early tps: {early} vs {late}"
        );
    }

    #[test]
    fn delay_station_equivalent_to_think() {
        // Station chain {queueing + delay-z} with zero think time behaves
        // like {queueing} with think z.
        let with_delay = SimNetwork::new(
            vec![
                SimStation::queueing("s", 1, 0.02),
                SimStation::delay("z", 1.0),
            ],
            Distribution::Deterministic { value: 0.0 },
        )
        .unwrap();
        let with_think = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let a = run(with_delay, 25, 2000.0, 21);
        let b = run(with_think, 25, 2000.0, 22);
        // Throughputs agree statistically.
        assert!(rel(a.system.throughput, b.system.throughput) < 0.04);
    }

    #[test]
    fn config_validation() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let bad = |cfg: SimConfig| Simulation::new(net.clone(), cfg).is_err();
        assert!(bad(SimConfig {
            customers: 0,
            ..SimConfig::default()
        }));
        assert!(bad(SimConfig {
            horizon: 0.0,
            ..SimConfig::default()
        }));
        assert!(bad(SimConfig {
            warmup: 200.0,
            horizon: 100.0,
            ..SimConfig::default()
        }));
        assert!(bad(SimConfig {
            stagger: -1.0,
            ..SimConfig::default()
        }));
        assert!(bad(SimConfig {
            bucket_width: 0.0,
            ..SimConfig::default()
        }));
    }

    #[test]
    fn contention_inflates_response_only_under_load() {
        use crate::contention::ContentionModel;
        let mk = |contention: Option<ContentionModel>, n: usize| {
            let mut st = SimStation::queueing("s", 1, 0.02);
            if let Some(c) = contention {
                st = st.with_contention(c);
            }
            let net = SimNetwork::new(vec![st], Distribution::Exponential { mean: 1.0 }).unwrap();
            Simulation::new(
                net,
                SimConfig {
                    customers: n,
                    horizon: 1500.0,
                    warmup: 200.0,
                    seed: 77,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let model = ContentionModel::LinearBeyond {
            threshold: 3,
            slope: 0.25,
            max_factor: 4.0,
        };
        // Single user: the queue never exceeds the threshold, so the
        // seeded runs are bit-identical with and without contention.
        let base1 = mk(None, 1);
        let cont1 = mk(Some(model.clone()), 1);
        assert_eq!(base1.system, cont1.system);
        // Heavy load: contention inflates service and response markedly.
        let base = mk(None, 40);
        let cont = mk(Some(model), 40);
        assert!(
            cont.system.mean_response > base.system.mean_response * 1.3,
            "contended {} vs base {}",
            cont.system.mean_response,
            base.system.mean_response
        );
        assert!(cont.system.throughput < base.system.throughput);
    }

    #[test]
    fn p95_at_least_mean() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 0.5 },
        )
        .unwrap();
        let rep = run(net, 40, 1000.0, 17);
        assert!(rep.system.p95_response >= rep.system.mean_response);
    }

    #[test]
    fn response_ci_covers_mean() {
        let net = SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.02)],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let rep = run(net, 20, 2000.0, 31);
        let ci = rep.response_ci(20).unwrap();
        // Batch means truncates to a multiple of the batch size, so the
        // grand mean can differ slightly from the full-sample mean.
        let rel = (ci.mean - rep.system.mean_response).abs() / rep.system.mean_response;
        assert!(
            rel < 0.02,
            "ci mean {} vs sample mean {}",
            ci.mean,
            rep.system.mean_response
        );
        assert!(ci.half_width > 0.0);
    }
}
