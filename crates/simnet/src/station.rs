//! Station and network specifications for the simulator.

use crate::contention::ContentionModel;
use crate::rng::Distribution;
use crate::SimError;

/// Service discipline of a simulated station.
#[derive(Debug, Clone, PartialEq)]
pub enum StationModel {
    /// FCFS queue with `servers` identical servers.
    Queueing {
        /// Number of parallel servers (CPU cores, spindles, …).
        servers: usize,
    },
    /// Infinite-server delay: every customer is served immediately.
    Delay,
}

/// One simulated service station.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStation {
    /// Station label (carried into reports).
    pub name: String,
    /// Discipline.
    pub model: StationModel,
    /// Service-time distribution for one visit. The mean is the station's
    /// service demand per interaction (visits folded in, matching how the
    /// Service Demand Law aggregates them).
    pub service: Distribution,
    /// Optional in-run contention: inflates sampled service times with the
    /// station's instantaneous queue length (see
    /// [`crate::ContentionModel`]). `None` keeps the station product-form.
    pub contention: Option<ContentionModel>,
}

impl SimStation {
    /// FCFS multi-server station with exponential service of mean `demand`.
    pub fn queueing(name: &str, servers: usize, demand: f64) -> Self {
        Self {
            name: name.to_string(),
            model: StationModel::Queueing { servers },
            service: Distribution::Exponential { mean: demand },
            contention: None,
        }
    }

    /// Delay station with exponential service of mean `demand`.
    pub fn delay(name: &str, demand: f64) -> Self {
        Self {
            name: name.to_string(),
            model: StationModel::Delay,
            service: Distribution::Exponential { mean: demand },
            contention: None,
        }
    }

    /// Overrides the service distribution (builder style).
    #[must_use]
    pub fn with_service(mut self, d: Distribution) -> Self {
        self.service = d;
        self
    }

    /// Adds an in-run contention model (builder style).
    #[must_use]
    pub fn with_contention(mut self, c: ContentionModel) -> Self {
        self.contention = Some(c);
        self
    }

    /// The station's mean demand.
    pub fn demand(&self) -> f64 {
        self.service.mean()
    }

    fn validate(&self) -> Result<(), SimError> {
        if let StationModel::Queueing { servers: 0 } = self.model {
            return Err(SimError::InvalidParameter {
                what: "station needs at least one server",
            });
        }
        if let Some(c) = &self.contention {
            c.validate()?;
        }
        self.service.validate()
    }
}

/// A fully specified closed network for one simulation run.
///
/// Customers visit the stations **in declaration order** once per
/// interaction, then think. This serial-chain routing has the same
/// product-form solution as probabilistic routing with equal visit counts,
/// and mirrors a synchronous web request walking load-injector →
/// web/application → database resources.
#[derive(Debug, Clone, PartialEq)]
pub struct SimNetwork {
    stations: Vec<SimStation>,
    think: Distribution,
}

impl SimNetwork {
    /// Builds and validates a network.
    pub fn new(stations: Vec<SimStation>, think: Distribution) -> Result<Self, SimError> {
        if stations.is_empty() {
            return Err(SimError::EmptyNetwork);
        }
        for s in &stations {
            s.validate()?;
        }
        think.validate()?;
        Ok(Self { stations, think })
    }

    /// The stations in visiting order.
    pub fn stations(&self) -> &[SimStation] {
        &self.stations
    }

    /// The think-time distribution.
    pub fn think(&self) -> &Distribution {
        &self.think
    }

    /// Returns a copy with a different think-time distribution.
    pub fn with_think(&self, think: Distribution) -> Result<Self, SimError> {
        think.validate()?;
        Ok(Self {
            stations: self.stations.clone(),
            think,
        })
    }

    /// Returns a copy with station demands re-aimed at `demands` (same
    /// order, shapes preserved). Errors on arity mismatch or a negative
    /// demand. Used by the testbed to run the same topology at another
    /// concurrency level's interpolated demands.
    pub fn with_demands(&self, demands: &[f64]) -> Result<Self, SimError> {
        if demands.len() != self.stations.len() {
            return Err(SimError::InvalidParameter {
                what: "demand array length must match station count",
            });
        }
        if demands.iter().any(|d| !(d.is_finite() && *d >= 0.0)) {
            return Err(SimError::InvalidParameter {
                what: "demands must be finite and >= 0",
            });
        }
        let stations = self
            .stations
            .iter()
            .zip(demands.iter())
            .map(|(s, &d)| {
                let mut s2 = s.clone();
                s2.service = s.service.with_mean(d);
                s2
            })
            .collect();
        Ok(Self {
            stations,
            think: self.think.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let s = SimStation::queueing("cpu", 8, 0.01);
        assert_eq!(s.demand(), 0.01);
        assert_eq!(s.model, StationModel::Queueing { servers: 8 });
        let d = SimStation::delay("lan", 0.002);
        assert_eq!(d.model, StationModel::Delay);
    }

    #[test]
    fn with_service_overrides_distribution() {
        let s = SimStation::queueing("disk", 1, 0.01)
            .with_service(Distribution::Erlang { k: 4, mean: 0.02 });
        assert_eq!(s.demand(), 0.02);
    }

    #[test]
    fn network_validation() {
        assert_eq!(
            SimNetwork::new(vec![], Distribution::Deterministic { value: 1.0 }),
            Err(SimError::EmptyNetwork)
        );
        assert!(SimNetwork::new(
            vec![SimStation::queueing("s", 0, 0.1)],
            Distribution::Deterministic { value: 1.0 }
        )
        .is_err());
        assert!(SimNetwork::new(
            vec![SimStation::queueing("s", 1, -0.1)],
            Distribution::Deterministic { value: 1.0 }
        )
        .is_err());
        assert!(SimNetwork::new(
            vec![SimStation::queueing("s", 1, 0.1)],
            Distribution::Exponential { mean: -1.0 }
        )
        .is_err());
    }

    #[test]
    fn with_demands_preserves_shape() {
        let net = SimNetwork::new(
            vec![
                SimStation::queueing("a", 2, 0.01)
                    .with_service(Distribution::Erlang { k: 3, mean: 0.01 }),
                SimStation::queueing("b", 1, 0.02),
            ],
            Distribution::Exponential { mean: 1.0 },
        )
        .unwrap();
        let net2 = net.with_demands(&[0.005, 0.04]).unwrap();
        assert_eq!(net2.stations()[0].demand(), 0.005);
        assert!(matches!(
            net2.stations()[0].service,
            Distribution::Erlang { k: 3, .. }
        ));
        assert_eq!(net2.stations()[1].demand(), 0.04);
        assert!(net.with_demands(&[0.1]).is_err());
        assert!(net.with_demands(&[0.1, f64::NAN]).is_err());
    }
}
