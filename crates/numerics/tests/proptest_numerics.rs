//! Property-based tests of the numerical substrate: invariants that must
//! hold for arbitrary (valid) inputs, not just the hand-picked unit cases.
//!
//! Runs on the in-house deterministic harness (`mvasd_numerics::propcheck`)
//! instead of `proptest`, keeping the workspace dependency-free.

use mvasd_numerics::chebyshev::{chebyshev_error_bound_exponential, chebyshev_t};
use mvasd_numerics::dd::Dd;
use mvasd_numerics::erlang::{erlang_b, machine_repair};
use mvasd_numerics::interp::{
    BoundaryCondition, CubicSpline, Interpolant, LinearInterp, PchipInterp, SmoothingSpline,
};
use mvasd_numerics::optimize::{nelder_mead, NelderMeadOptions};
use mvasd_numerics::propcheck::{check, Config, Gen};
use mvasd_numerics::stats::{mean_pct_deviation, percentile};

fn cfg() -> Config {
    Config::default().cases(64)
}

/// Strictly increasing abscissae with positive ordinates.
fn gen_knots(g: &mut Gen, min: usize, max: usize) -> (Vec<f64>, Vec<f64>) {
    let len = g.usize_in(min, max);
    let mut x = 0.0;
    let mut xs = Vec::with_capacity(len);
    let mut ys = Vec::with_capacity(len);
    for _ in 0..len {
        x += g.f64_in(0.5, 50.0);
        xs.push(x);
        ys.push(g.f64_in(0.001, 2.0));
    }
    (xs, ys)
}

#[test]
fn cubic_spline_is_c1_c2_at_interior_knots() {
    check("cubic_spline_is_c1_c2_at_interior_knots", &cfg(), |g| {
        let (xs, ys) = gen_knots(g, 4, 10);
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
        for &x in &xs[1..xs.len() - 1] {
            let eps = 1e-6 * (xs[xs.len() - 1] - xs[0]);
            let (_, d_lo, dd_lo, _) = s.eval_all(x - eps);
            let (_, d_hi, dd_hi, _) = s.eval_all(x + eps);
            let scale = d_lo.abs().max(1.0);
            assert!((d_lo - d_hi).abs() < 1e-3 * scale, "C1 at {x}");
            let dscale = dd_lo.abs().max(1.0);
            assert!((dd_lo - dd_hi).abs() < 2e-2 * dscale, "C2 at {x}");
        }
    });
}

#[test]
fn interpolants_pass_through_knots() {
    check("interpolants_pass_through_knots", &cfg(), |g| {
        let (xs, ys) = gen_knots(g, 3, 9);
        let c = CubicSpline::new(&xs, &ys, BoundaryCondition::Natural).unwrap();
        let p = PchipInterp::new(&xs, &ys).unwrap();
        let l = LinearInterp::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let tol = 1e-8 * y.abs().max(1.0);
            assert!((c.eval(*x) - y).abs() < tol);
            assert!((p.eval(*x) - y).abs() < tol);
            assert!((l.eval(*x) - y).abs() < tol);
        }
    });
}

#[test]
fn pchip_stays_inside_local_envelope() {
    // Shape preservation: between two knots the PCHIP value never
    // leaves [min(y_i, y_{i+1}), max(y_i, y_{i+1})].
    check("pchip_stays_inside_local_envelope", &cfg(), |g| {
        let (xs, ys) = gen_knots(g, 3, 9);
        let p = PchipInterp::new(&xs, &ys).unwrap();
        for i in 0..xs.len() - 1 {
            let (lo, hi) = (ys[i].min(ys[i + 1]), ys[i].max(ys[i + 1]));
            for t in 1..10 {
                let x = xs[i] + (xs[i + 1] - xs[i]) * t as f64 / 10.0;
                let v = p.eval(x);
                assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "x={x} v={v} in [{lo},{hi}]"
                );
            }
        }
    });
}

#[test]
fn smoothing_spline_objective_is_optimal() {
    // The fit must (weakly) beat the pure interpolant in its own
    // objective — the defining property of the minimizer.
    check("smoothing_spline_objective_is_optimal", &cfg(), |g| {
        let (xs, ys) = gen_knots(g, 4, 9);
        let lambda = g.f64_in(1e-6, 1.0);
        let smooth = SmoothingSpline::fit(&xs, &ys, lambda).unwrap();
        let interp = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        let interp_obj = interp.rss() + lambda * interp.roughness();
        assert!(smooth.objective() <= interp_obj + 1e-9 * (1.0 + interp_obj.abs()));
    });
}

#[test]
fn dd_add_sub_roundtrip() {
    check("dd_add_sub_roundtrip", &cfg(), |g| {
        let a = g.f64_in(-1e12, 1e12);
        let b = g.f64_in(-1e12, 1e12);
        let x = Dd::from_f64(a) + Dd::from_f64(b) - Dd::from_f64(b);
        assert!((x.to_f64() - a).abs() <= a.abs() * 1e-25 + 1e-280);
    });
}

#[test]
fn dd_mul_div_roundtrip() {
    check("dd_mul_div_roundtrip", &cfg(), |g| {
        let a = g.f64_in(-1e8, 1e8);
        let b = g.f64_in(1e-6, 1e8);
        let x = Dd::from_f64(a) * Dd::from_f64(b) / Dd::from_f64(b);
        assert!((x.to_f64() - a).abs() <= a.abs() * 1e-25 + 1e-280);
    });
}

#[test]
fn chebyshev_t_matches_trig() {
    check("chebyshev_t_matches_trig", &cfg(), |g| {
        let n = g.usize_in(0, 11);
        let theta = g.f64_in(0.0, std::f64::consts::PI);
        let x = theta.cos();
        let expected = (n as f64 * theta).cos();
        assert!((chebyshev_t(n, x) - expected).abs() < 1e-8);
    });
}

#[test]
fn chebyshev_error_bound_monotone_in_nodes() {
    check("chebyshev_error_bound_monotone_in_nodes", &cfg(), |g| {
        let mu = g.f64_in(0.1, 3.0);
        let mut prev = f64::INFINITY;
        for n in 1..=10 {
            let b = chebyshev_error_bound_exponential(n, mu).unwrap();
            assert!(b < prev);
            prev = b;
        }
    });
}

#[test]
fn erlang_b_bounded_and_monotone() {
    check("erlang_b_bounded_and_monotone", &cfg(), |g| {
        let servers = g.usize_in(1, 29);
        let load = g.f64_in(0.01, 50.0);
        let b = erlang_b(servers, load).unwrap();
        assert!((0.0..=1.0).contains(&b));
        // More servers => less blocking.
        let b_more = erlang_b(servers + 1, load).unwrap();
        assert!(b_more <= b + 1e-12);
        // More load => more blocking.
        let b_heavier = erlang_b(servers, load * 1.5).unwrap();
        assert!(b_heavier >= b - 1e-12);
    });
}

#[test]
fn machine_repair_conserves_population() {
    check("machine_repair_conserves_population", &cfg(), |g| {
        let n = g.usize_in(1, 199);
        let c = g.usize_in(1, 15);
        let s = g.f64_in(0.01, 1.0);
        let z = g.f64_in(0.1, 5.0);
        let (x, q) = machine_repair(n, c, s, z).unwrap();
        // N = X·Z + Q (population at think stage + at station).
        assert!((x * z + q - n as f64).abs() < 1e-6 * n as f64);
        // Throughput bounded by both population and capacity.
        assert!(x <= c as f64 / s + 1e-9);
        assert!(x <= n as f64 / z + 1e-9);
    });
}

#[test]
fn nelder_mead_minimizes_random_quadratic() {
    check("nelder_mead_minimizes_random_quadratic", &cfg(), |g| {
        let cx = g.f64_in(-50.0, 50.0);
        let cy = g.f64_in(-50.0, 50.0);
        let ax = g.f64_in(0.1, 10.0);
        let ay = g.f64_in(0.1, 10.0);
        let r = nelder_mead(
            |p| ax * (p[0] - cx).powi(2) + ay * (p[1] - cy).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions {
                max_iterations: 5000,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!((r.x[0] - cx).abs() < 1e-2, "{:?} vs ({cx},{cy})", r.x);
        assert!((r.x[1] - cy).abs() < 1e-2);
    });
}

#[test]
fn percentile_between_min_and_max() {
    check("percentile_between_min_and_max", &cfg(), |g| {
        let mut xs = g.vec_f64(1, 49, -1e6, 1e6);
        let p = g.f64_in(0.0, 100.0);
        let v = percentile(&xs, p).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(v >= xs[0] - 1e-9);
        assert!(v <= xs[xs.len() - 1] + 1e-9);
    });
}

#[test]
fn pct_deviation_zero_iff_equal() {
    check("pct_deviation_zero_iff_equal", &cfg(), |g| {
        let xs = g.vec_f64(1, 19, 0.1, 1e6);
        let d = mean_pct_deviation(&xs, &xs).unwrap();
        assert!(d.abs() < 1e-12);
        // Scaling all predictions by 1.1 gives exactly 10 %.
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1.1).collect();
        let d = mean_pct_deviation(&scaled, &xs).unwrap();
        assert!((d - 10.0).abs() < 1e-6);
    });
}
