//! Property-based tests of the numerical substrate: invariants that must
//! hold for arbitrary (valid) inputs, not just the hand-picked unit cases.

use proptest::prelude::*;

use mvasd_numerics::chebyshev::{chebyshev_error_bound_exponential, chebyshev_t};
use mvasd_numerics::dd::Dd;
use mvasd_numerics::erlang::{erlang_b, machine_repair};
use mvasd_numerics::interp::{
    BoundaryCondition, CubicSpline, Interpolant, LinearInterp, PchipInterp, SmoothingSpline,
};
use mvasd_numerics::optimize::{nelder_mead, NelderMeadOptions};
use mvasd_numerics::stats::{mean_pct_deviation, percentile};

/// Strictly increasing abscissae with positive ordinates.
fn arb_knots(min: usize, max: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.5f64..50.0, 0.001f64..2.0), min..=max).prop_map(|steps| {
        let mut x = 0.0;
        let mut xs = Vec::with_capacity(steps.len());
        let mut ys = Vec::with_capacity(steps.len());
        for (dx, y) in steps {
            x += dx;
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cubic_spline_is_c1_c2_at_interior_knots((xs, ys) in arb_knots(4, 10)) {
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
        for &x in &xs[1..xs.len() - 1] {
            let eps = 1e-6 * (xs[xs.len() - 1] - xs[0]);
            let (_, d_lo, dd_lo, _) = s.eval_all(x - eps);
            let (_, d_hi, dd_hi, _) = s.eval_all(x + eps);
            let scale = d_lo.abs().max(1.0);
            prop_assert!((d_lo - d_hi).abs() < 1e-3 * scale, "C1 at {x}");
            let dscale = dd_lo.abs().max(1.0);
            prop_assert!((dd_lo - dd_hi).abs() < 2e-2 * dscale, "C2 at {x}");
        }
    }

    #[test]
    fn interpolants_pass_through_knots((xs, ys) in arb_knots(3, 9)) {
        let c = CubicSpline::new(&xs, &ys, BoundaryCondition::Natural).unwrap();
        let p = PchipInterp::new(&xs, &ys).unwrap();
        let l = LinearInterp::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let tol = 1e-8 * y.abs().max(1.0);
            prop_assert!((c.eval(*x) - y).abs() < tol);
            prop_assert!((p.eval(*x) - y).abs() < tol);
            prop_assert!((l.eval(*x) - y).abs() < tol);
        }
    }

    #[test]
    fn pchip_stays_inside_local_envelope((xs, ys) in arb_knots(3, 9)) {
        // Shape preservation: between two knots the PCHIP value never
        // leaves [min(y_i, y_{i+1}), max(y_i, y_{i+1})].
        let p = PchipInterp::new(&xs, &ys).unwrap();
        for i in 0..xs.len() - 1 {
            let (lo, hi) = (ys[i].min(ys[i + 1]), ys[i].max(ys[i + 1]));
            for t in 1..10 {
                let x = xs[i] + (xs[i + 1] - xs[i]) * t as f64 / 10.0;
                let v = p.eval(x);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "x={x} v={v} in [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn smoothing_spline_objective_is_optimal(
        (xs, ys) in arb_knots(4, 9),
        lambda in 1e-6f64..1.0,
    ) {
        // The fit must (weakly) beat the pure interpolant in its own
        // objective — the defining property of the minimizer.
        let smooth = SmoothingSpline::fit(&xs, &ys, lambda).unwrap();
        let interp = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        let interp_obj = interp.rss() + lambda * interp.roughness();
        prop_assert!(smooth.objective() <= interp_obj + 1e-9 * (1.0 + interp_obj.abs()));
    }

    #[test]
    fn dd_add_sub_roundtrip(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let x = Dd::from_f64(a) + Dd::from_f64(b) - Dd::from_f64(b);
        prop_assert!((x.to_f64() - a).abs() <= a.abs() * 1e-25 + 1e-280);
    }

    #[test]
    fn dd_mul_div_roundtrip(a in -1e8f64..1e8, b in 1e-6f64..1e8) {
        let x = Dd::from_f64(a) * Dd::from_f64(b) / Dd::from_f64(b);
        prop_assert!((x.to_f64() - a).abs() <= a.abs() * 1e-25 + 1e-280);
    }

    #[test]
    fn chebyshev_t_matches_trig(n in 0usize..12, theta in 0.0f64..std::f64::consts::PI) {
        let x = theta.cos();
        let expected = (n as f64 * theta).cos();
        prop_assert!((chebyshev_t(n, x) - expected).abs() < 1e-8);
    }

    #[test]
    fn chebyshev_error_bound_monotone_in_nodes(mu in 0.1f64..3.0) {
        let mut prev = f64::INFINITY;
        for n in 1..=10 {
            let b = chebyshev_error_bound_exponential(n, mu).unwrap();
            prop_assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn erlang_b_bounded_and_monotone(servers in 1usize..30, load in 0.01f64..50.0) {
        let b = erlang_b(servers, load).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
        // More servers => less blocking.
        let b_more = erlang_b(servers + 1, load).unwrap();
        prop_assert!(b_more <= b + 1e-12);
        // More load => more blocking.
        let b_heavier = erlang_b(servers, load * 1.5).unwrap();
        prop_assert!(b_heavier >= b - 1e-12);
    }

    #[test]
    fn machine_repair_conserves_population(
        n in 1usize..200,
        c in 1usize..16,
        s in 0.01f64..1.0,
        z in 0.1f64..5.0,
    ) {
        let (x, q) = machine_repair(n, c, s, z).unwrap();
        // N = X·Z + Q (population at think stage + at station).
        prop_assert!((x * z + q - n as f64).abs() < 1e-6 * n as f64);
        // Throughput bounded by both population and capacity.
        prop_assert!(x <= c as f64 / s + 1e-9);
        prop_assert!(x <= n as f64 / z + 1e-9);
    }

    #[test]
    fn nelder_mead_minimizes_random_quadratic(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        ax in 0.1f64..10.0,
        ay in 0.1f64..10.0,
    ) {
        let r = nelder_mead(
            |p| ax * (p[0] - cx).powi(2) + ay * (p[1] - cy).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions { max_iterations: 5000, ..NelderMeadOptions::default() },
        )
        .unwrap();
        prop_assert!((r.x[0] - cx).abs() < 1e-2, "{:?} vs ({cx},{cy})", r.x);
        prop_assert!((r.x[1] - cy).abs() < 1e-2);
    }

    #[test]
    fn percentile_between_min_and_max(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&xs, p).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] - 1e-9);
        prop_assert!(v <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn pct_deviation_zero_iff_equal(xs in proptest::collection::vec(0.1f64..1e6, 1..20)) {
        let d = mean_pct_deviation(&xs, &xs).unwrap();
        prop_assert!(d.abs() < 1e-12);
        // Scaling all predictions by 1.1 gives exactly 10 %.
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1.1).collect();
        let d = mean_pct_deviation(&scaled, &xs).unwrap();
        prop_assert!((d - 10.0).abs() < 1e-6);
    }
}
