//! Double-double (~106-bit) arithmetic.
//!
//! Exact load-dependent/multi-server MVA is numerically unstable: the
//! `p(0) = 1 − Σ…` closure cancels catastrophically once a multi-server
//! station nears saturation, and the population recursion then amplifies
//! the round-off *exponentially* (for a 16-core station — the paper's
//! hardware — plain `f64` throughput is wrong by several percent around
//! the knee and even violates the Bottleneck Law). Carrying the recursion
//! state in double-double pushes the base error from 2⁻⁵³ to ≈ 2⁻¹⁰⁶,
//! which widens the usable population range by orders of magnitude (the
//! solvers switch to convolution evaluation past the remaining envelope —
//! see `mvasd-queueing`).
//!
//! The implementation uses the standard error-free transforms (Knuth
//! two-sum, FMA-based two-product; Dekker/Bailey style renormalization).
//! The full `Add/Sub/Mul/Div/Neg` operator set is provided for `Dd ∘ Dd`
//! and `Dd ∘ f64`.

use core::ops::{Add, Div, Mul, Neg, Sub};

/// A double-double value `hi + lo` with `|lo| ≤ ulp(hi)/2`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing error component.
    pub lo: f64,
}

/// Error-free sum: returns `(s, e)` with `s = fl(a+b)` and `a+b = s+e`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum for `|a| ≥ |b|`.
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product via FMA: `a·b = p + e` exactly.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Lifts an `f64`.
    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Rounds to the nearest `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Renormalizes a raw `(hi, lo)` pair.
    #[inline]
    fn renorm(hi: f64, lo: f64) -> Dd {
        let (s, e) = quick_two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// Divides an `f64` by this value.
    #[inline]
    pub fn recip_mul(self, numerator: f64) -> Dd {
        Dd::from_f64(numerator) / self
    }

    /// `max(self, 0)` as a probability clamp.
    #[inline]
    pub fn max_zero(self) -> Dd {
        if self.to_f64() < 0.0 {
            Dd::ZERO
        } else {
            self
        }
    }

    /// Whether the rounded value is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.to_f64() > 0.0
    }
}

impl Add for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, other: Dd) -> Dd {
        let (s, e) = two_sum(self.hi, other.hi);
        let e = e + self.lo + other.lo;
        Dd::renorm(s, e)
    }
}

impl Add<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, other: f64) -> Dd {
        let (s, e) = two_sum(self.hi, other);
        let e = e + self.lo;
        Dd::renorm(s, e)
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, other: Dd) -> Dd {
        self + (-other)
    }
}

impl Sub<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, other: f64) -> Dd {
        self + (-other)
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, other: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, other.hi);
        let e = e + self.hi * other.lo + self.lo * other.hi;
        Dd::renorm(p, e)
    }
}

impl Mul<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, other: f64) -> Dd {
        let (p, e) = two_prod(self.hi, other);
        let e = e + self.lo * other;
        Dd::renorm(p, e)
    }
}

impl Div for Dd {
    type Output = Dd;
    /// Division with two Newton-style correction terms (~105 bits).
    #[inline]
    fn div(self, other: Dd) -> Dd {
        let q1 = self.hi / other.hi;
        // r = self − q1·other, computed in double-double.
        let r = self - other * q1;
        let q2 = r.hi / other.hi;
        let r2 = r - other * q2;
        let q3 = r2.hi / other.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd::renorm(s, e + q3)
    }
}

impl Div<f64> for Dd {
    type Output = Dd;
    #[inline]
    fn div(self, other: f64) -> Dd {
        self / Dd::from_f64(other)
    }
}

impl From<f64> for Dd {
    #[inline]
    fn from(x: f64) -> Dd {
        Dd::from_f64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip_and_identities() {
        let a = Dd::from_f64(1.5);
        assert_eq!(a.to_f64(), 1.5);
        assert_eq!((Dd::ZERO + a).to_f64(), 1.5);
        assert_eq!((a * Dd::ONE).to_f64(), 1.5);
        assert_eq!((a - a).to_f64(), 0.0);
        assert_eq!(Dd::from(2.0), Dd::from_f64(2.0));
    }

    #[test]
    fn captures_error_beyond_f64() {
        // 1 + 2^-70 is unrepresentable in f64 but exact in Dd.
        let tiny = (2.0f64).powi(-70);
        let x = Dd::ONE + tiny;
        assert_eq!(x.hi, 1.0);
        assert_eq!(x.lo, tiny);
        // Subtracting 1 recovers the tiny part exactly.
        assert_eq!((x - Dd::ONE).to_f64(), tiny);
        assert_eq!((x - 1.0).to_f64(), tiny);
    }

    #[test]
    fn big_small_cancellation() {
        // (1e16 + 1) − 1e16 = 1 exactly in Dd; in f64 it is 0 or 2.
        let big = 1e16;
        let x = Dd::from_f64(big) + 1.0;
        assert_eq!((x - Dd::from_f64(big)).to_f64(), 1.0);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Dd::from_f64(0.123456789);
        let b = Dd::from_f64(9.87654321e3);
        let q = a / b;
        let back = q * b;
        let err = back - a;
        assert!(err.to_f64().abs() < 1e-30, "err {}", err.to_f64());
    }

    #[test]
    fn one_third_division_high_precision() {
        let third = Dd::ONE / Dd::from_f64(3.0);
        // 3·(1/3) − 1 should vanish to ~1e-32.
        let resid = third * 3.0 - Dd::ONE;
        assert!(resid.to_f64().abs() < 1e-31, "resid {}", resid.to_f64());
    }

    #[test]
    fn scalar_division() {
        let x = Dd::from_f64(10.0) / 4.0;
        assert_eq!(x.to_f64(), 2.5);
    }

    #[test]
    fn kahan_style_series() {
        // Σ 1/2^k for k = 0..120 = 2 − 2^-120; f64 stalls at 2.0 exactly
        // after k = 53, Dd keeps refining.
        let mut acc = Dd::ZERO;
        let mut term = 1.0f64;
        for _ in 0..=120 {
            acc = acc + term;
            term *= 0.5;
        }
        let defect = Dd::from_f64(2.0) - acc;
        assert!(
            defect.to_f64() > 0.0,
            "must still see the 2^-120 defect region"
        );
        assert!(defect.to_f64() < 1e-30);
    }

    #[test]
    fn clamps_and_predicates() {
        assert_eq!(Dd::from_f64(-1.0).max_zero(), Dd::ZERO);
        assert_eq!(Dd::from_f64(2.0).max_zero().to_f64(), 2.0);
        assert!(Dd::from_f64(0.1).is_positive());
        assert!(!Dd::ZERO.is_positive());
        assert!(!Dd::from_f64(-0.1).is_positive());
        assert_eq!((-Dd::from_f64(3.0)).to_f64(), -3.0);
    }

    #[test]
    fn recip_mul_matches_div() {
        let d = Dd::from_f64(7.0);
        let a = d.recip_mul(3.0);
        let b = Dd::from_f64(3.0) / d;
        assert!((a.to_f64() - b.to_f64()).abs() < 1e-30);
    }

    #[test]
    fn simulated_mva_cancellation_pattern() {
        // The pattern that breaks f64 MVA: p0 = 1 − u/C − w with u/C → 1.
        // With u/C = 1 − 2^-40 and w = 2^-41, exact p0 = 2^-41.
        let u_over_c = Dd::ONE - Dd::from_f64((2.0f64).powi(-40));
        let w = Dd::from_f64((2.0f64).powi(-41));
        let p0 = Dd::ONE - u_over_c - w;
        let exact = (2.0f64).powi(-41);
        assert!((p0.to_f64() - exact).abs() < exact * 1e-15);
    }

    #[test]
    fn mixed_scalar_ops() {
        let x = Dd::from_f64(2.0);
        assert_eq!((x * 3.0).to_f64(), 6.0);
        assert_eq!((x + 1.0).to_f64(), 3.0);
        assert_eq!((x - 0.5).to_f64(), 1.5);
    }
}
