//! Chebyshev Nodes and the interpolation error bound — paper Section 8.
//!
//! The paper uses Chebyshev Nodes to pick *which concurrency levels to load
//! test*: eq. 16 gives the nodes on `(−1, 1)`, eq. 17 maps them to an
//! arbitrary interval `[a, b]`, and eq. 18–19 bound the interpolation error,
//! which the paper evaluates for exponential functions of varying mean
//! (Fig. 13) to argue that ≳ 5 nodes suffice for < 0.2 % error.

use crate::NumericsError;

/// Chebyshev Nodes of the first kind on `(−1, 1)` — paper eq. 16:
///
/// ```text
/// x_k = cos((2k − 1)/(2n) · π),  k = 1, …, n
/// ```
///
/// Returned in the natural (descending) cosine order, matching the formula.
pub fn chebyshev_nodes_unit(n: usize) -> Vec<f64> {
    (1..=n)
        .map(|k| ((2.0 * k as f64 - 1.0) / (2.0 * n as f64) * std::f64::consts::PI).cos())
        .collect()
}

/// Chebyshev Nodes mapped to `[a, b]` — paper eq. 17:
///
/// ```text
/// x_k = (a + b)/2 + (b − a)/2 · cos((2k − 1)/(2n) · π)
/// ```
///
/// Order follows eq. 16 (descending in `x`); callers that need ascending
/// knots should sort. See [`chebyshev_levels`] for the integer concurrency
/// levels the paper derives from these.
pub fn chebyshev_nodes(n: usize, a: f64, b: f64) -> Vec<f64> {
    chebyshev_nodes_unit(n)
        .into_iter()
        .map(|x| 0.5 * (a + b) + 0.5 * (b - a) * x)
        .collect()
}

/// Integer concurrency levels from Chebyshev Nodes: takes the ceiling of
/// eq. 17 (a virtual-user count must be a whole user, and the paper's
/// published sets — e.g. a = 1, b = 300, n = 3 → {22, 151, 280} — are the
/// ceilings of the real-valued nodes), sorts ascending, and deduplicates.
pub fn chebyshev_levels(n: usize, a: f64, b: f64) -> Vec<u64> {
    let mut levels: Vec<u64> = chebyshev_nodes(n, a, b)
        .into_iter()
        .map(|x| x.ceil().max(1.0) as u64)
        .collect();
    levels.sort_unstable();
    levels.dedup();
    levels
}

/// Evaluates the Chebyshev polynomial of the first kind `T_n(x)` by the
/// three-term recurrence (stable on `[-1, 1]`).
pub fn chebyshev_t(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut t_prev = 1.0;
            let mut t = x;
            for _ in 2..=n {
                let t_next = 2.0 * x * t - t_prev;
                t_prev = t;
                t = t_next;
            }
            t
        }
    }
}

/// The Chebyshev interpolation error bound of paper eq. 19 on `[-1, 1]`:
///
/// ```text
/// |f(x) − P(x)| ≤ 1 / (2^{n−1} n!) · max_{x∈[−1,1]} |f⁽ⁿ⁾(x)|
/// ```
///
/// `max_nth_deriv` is the caller-supplied `max |f⁽ⁿ⁾|` over the interval.
/// Returns an error for `n = 0` (the bound needs at least one node).
pub fn chebyshev_error_bound(n: usize, max_nth_deriv: f64) -> Result<f64, NumericsError> {
    if n == 0 {
        return Err(NumericsError::InvalidParameter { what: "n >= 1" });
    }
    if !(max_nth_deriv.is_finite() && max_nth_deriv >= 0.0) {
        return Err(NumericsError::NonFinite {
            what: "max |f^(n)| must be finite and non-negative",
        });
    }
    // 1 / (2^{n-1} n!) computed in log space to survive large n.
    let log2 = (n as f64 - 1.0) * std::f64::consts::LN_2;
    let logfact: f64 = (1..=n).map(|k| (k as f64).ln()).sum();
    Ok((max_nth_deriv.ln() - log2 - logfact).exp())
}

/// Error bound of eq. 19 specialized to `f(x) = e^{µx}` on `[-1, 1]`
/// (so `max |f⁽ⁿ⁾| = µⁿ e^µ`) — the family the paper's Fig. 13 sweeps.
pub fn chebyshev_error_bound_exponential(n: usize, mu: f64) -> Result<f64, NumericsError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(NumericsError::InvalidParameter {
            what: "mu must be finite and > 0",
        });
    }
    if n == 0 {
        return Err(NumericsError::InvalidParameter { what: "n >= 1" });
    }
    // Work in log space: ln bound = n ln µ + µ − (n−1) ln 2 − ln n!.
    let logfact: f64 = (1..=n).map(|k| (k as f64).ln()).sum();
    Ok((n as f64 * mu.ln() + mu - (n as f64 - 1.0) * std::f64::consts::LN_2 - logfact).exp())
}

/// Generality helper for eq. 18: the node polynomial `∏ (x − xᵢ)` evaluated
/// at `x`, which appears in the pointwise interpolation error term.
pub fn node_polynomial(nodes: &[f64], x: f64) -> f64 {
    nodes.iter().map(|&xi| x - xi).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn unit_nodes_known_values() {
        // n = 1: cos(π/2) = 0.
        let n1 = chebyshev_nodes_unit(1);
        assert!(close(n1[0], 0.0, 1e-15));
        // n = 2: cos(π/4), cos(3π/4) = ±√2/2.
        let n2 = chebyshev_nodes_unit(2);
        assert!(close(n2[0], std::f64::consts::FRAC_1_SQRT_2, 1e-12));
        assert!(close(n2[1], -std::f64::consts::FRAC_1_SQRT_2, 1e-12));
    }

    #[test]
    fn nodes_inside_open_interval_and_symmetric() {
        for n in 1..=12 {
            let nodes = chebyshev_nodes_unit(n);
            assert_eq!(nodes.len(), n);
            for &x in &nodes {
                assert!(x > -1.0 && x < 1.0);
            }
            // Symmetry: node k and node n+1-k are negatives.
            for k in 0..n {
                assert!(close(nodes[k], -nodes[n - 1 - k], 1e-12));
            }
            // Strictly descending.
            for w in nodes.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn nodes_are_roots_of_t_n() {
        for n in 1..=10 {
            for &x in &chebyshev_nodes_unit(n) {
                assert!(chebyshev_t(n, x).abs() < 1e-9, "T_{n}({x}) != 0");
            }
        }
    }

    #[test]
    fn mapped_nodes_paper_jpetstore_values() {
        // Paper Section 8, a = 1, b = 300:
        // Chebyshev 3 → N = 22, 151, 280
        assert_eq!(chebyshev_levels(3, 1.0, 300.0), vec![22, 151, 280]);
        // Chebyshev 5 → N = 9, 63, 151, 239, 293
        assert_eq!(chebyshev_levels(5, 1.0, 300.0), vec![9, 63, 151, 239, 293]);
        // Chebyshev 7 → N = 5, 34, 86, 151, 216, 268, 297
        assert_eq!(
            chebyshev_levels(7, 1.0, 300.0),
            vec![5, 34, 86, 151, 216, 268, 297]
        );
    }

    #[test]
    fn mapped_nodes_stay_in_interval() {
        let nodes = chebyshev_nodes(9, 10.0, 20.0);
        for &x in &nodes {
            assert!(x > 10.0 && x < 20.0);
        }
    }

    #[test]
    fn chebyshev_t_recurrence_vs_trig_identity() {
        // T_n(cos θ) = cos(n θ).
        for n in 0..=8 {
            for i in 0..=10 {
                let theta = i as f64 * 0.3;
                let x = theta.cos();
                assert!(
                    close(chebyshev_t(n, x), (n as f64 * theta).cos(), 1e-10),
                    "n={n} theta={theta}"
                );
            }
        }
    }

    #[test]
    fn error_bound_decreases_with_n() {
        let mut prev = f64::INFINITY;
        for n in 1..=12 {
            let b = chebyshev_error_bound_exponential(n, 1.0).unwrap();
            assert!(b < prev, "bound should shrink with n");
            prev = b;
        }
    }

    #[test]
    fn error_bound_below_0_2_percent_beyond_5_nodes() {
        // Paper Fig. 13: "for greater than 5 nodes, the error rate drops to
        // less than 0.2% for all cases". With the bound normalized by the
        // function scale e^µ this holds from n = 7 for every µ ≤ 2 (and
        // already from n = 6 for µ ≤ 1.5).
        for mu in [0.5, 1.0, 1.5] {
            let b = chebyshev_error_bound_exponential(6, mu).unwrap();
            assert!(b / mu.exp() < 0.002, "n=6 mu={mu}: {}", b / mu.exp());
        }
        for mu in [0.5, 1.0, 1.5, 2.0] {
            let b = chebyshev_error_bound_exponential(7, mu).unwrap();
            assert!(b / mu.exp() < 0.002, "n=7 mu={mu}: {}", b / mu.exp());
        }
    }

    #[test]
    fn error_bound_matches_generic_formula() {
        for n in 1..=8 {
            let mu: f64 = 1.3;
            let generic = chebyshev_error_bound(n, mu.powi(n as i32) * mu.exp()).unwrap();
            let special = chebyshev_error_bound_exponential(n, mu).unwrap();
            assert!(close(generic, special, generic * 1e-10));
        }
    }

    #[test]
    fn error_bound_rejects_bad_inputs() {
        assert!(chebyshev_error_bound(0, 1.0).is_err());
        assert!(chebyshev_error_bound(3, f64::NAN).is_err());
        assert!(chebyshev_error_bound_exponential(3, -1.0).is_err());
        assert!(chebyshev_error_bound_exponential(0, 1.0).is_err());
    }

    #[test]
    fn node_polynomial_vanishes_at_nodes() {
        let nodes = chebyshev_nodes(5, 0.0, 10.0);
        for &x in &nodes {
            assert!(node_polynomial(&nodes, x).abs() < 1e-9);
        }
        assert!(node_polynomial(&nodes, 11.0).abs() > 0.0);
    }

    #[test]
    fn chebyshev_minimizes_node_polynomial_sup_vs_equispaced() {
        // The defining optimality: max |∏(x−xᵢ)| is smaller for Chebyshev
        // nodes than equi-spaced ones.
        let n = 9;
        let cheb = chebyshev_nodes(n, -1.0, 1.0);
        let eq: Vec<f64> = (0..n)
            .map(|i| -1.0 + 2.0 * i as f64 / (n - 1) as f64)
            .collect();
        let sup = |nodes: &[f64]| {
            (0..=2000)
                .map(|i| -1.0 + 2.0 * i as f64 / 2000.0)
                .map(|x| node_polynomial(nodes, x).abs())
                .fold(0.0_f64, f64::max)
        };
        assert!(sup(&cheb) < sup(&eq));
        // And the Chebyshev sup equals 2^{1-n} (monic Chebyshev minimax).
        assert!(close(sup(&cheb), 2.0_f64.powi(1 - n as i32), 1e-6));
    }
}
