//! Derivative-free minimization (Nelder–Mead simplex).
//!
//! Used by the curve-fitting extrapolation baseline (`mvasd-core`'s
//! reproduction of the paper's ref. \[4], which fits sigmoid saturation
//! curves to measured throughput) and available for calibration tasks.
//! Deliberately minimal: bounded iterations, absolute/relative convergence
//! on the simplex spread, no constraints (callers encode constraints as
//! penalties).

use crate::NumericsError;

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Stop when the spread of simplex function values falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Initial simplex step per coordinate, relative to `|x0[i]|` (with an
    /// absolute floor for zero coordinates).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 2000,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met (vs iteration cap).
    pub converged: bool,
}

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method
/// (standard α=1, γ=2, ρ=0.5, σ=0.5 coefficients).
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    opts: NelderMeadOptions,
) -> Result<OptimizeResult, NumericsError> {
    let dim = x0.len();
    if dim == 0 {
        return Err(NumericsError::InvalidParameter {
            what: "need at least one dimension",
        });
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::NonFinite { what: "x0" });
    }
    let bad_tol = !opts.tolerance.is_finite() || opts.tolerance <= 0.0;
    let bad_step = !opts.initial_step.is_finite() || opts.initial_step <= 0.0;
    if bad_tol || opts.max_iterations == 0 || bad_step {
        return Err(NumericsError::InvalidParameter {
            what: "tolerance, max_iterations and initial_step must be positive",
        });
    }

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    simplex.push(x0.to_vec());
    for i in 0..dim {
        let mut p = x0.to_vec();
        // lint: float-eq-ok an exactly-zero start coordinate switches to the absolute step rule
        let step = if p[i] != 0.0 {
            p[i].abs() * opts.initial_step
        } else {
            opts.initial_step
        };
        p[i] += step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| f(p)).collect();
    if values.iter().any(|v| v.is_nan()) {
        return Err(NumericsError::NonFinite {
            what: "objective at the initial simplex",
        });
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < opts.max_iterations {
        iterations += 1;
        // Order the simplex.
        let mut idx: Vec<usize> = (0..=dim).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
        let (best, worst, second_worst) = (idx[0], idx[dim], idx[dim - 1]);

        // Converge on BOTH the function-value spread and the simplex size:
        // a simplex straddling a minimum symmetrically has zero value
        // spread while still being wide (the classic 1-D failure mode).
        let value_spread_ok =
            (values[worst] - values[best]).abs() <= opts.tolerance * (1.0 + values[best].abs());
        let coord_tol = opts.tolerance.sqrt();
        let coord_spread_ok = simplex.iter().all(|p| {
            p.iter()
                .zip(simplex[best].iter())
                .all(|(a, b)| (a - b).abs() <= coord_tol * (1.0 + b.abs()))
        });
        if value_spread_ok && coord_spread_ok {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; dim];
        for &i in idx.iter().take(dim) {
            for (c, v) in centroid.iter_mut().zip(simplex[i].iter()) {
                *c += v / dim as f64;
            }
        }

        let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x + t * (y - x))
                .collect()
        };

        // Reflection.
        let reflected = blend(&centroid, &simplex[worst], -1.0);
        let fr = f(&reflected);
        if fr < values[best] {
            // Expansion.
            let expanded = blend(&centroid, &simplex[worst], -2.0);
            let fe = f(&expanded);
            if fe < fr {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
            continue;
        }
        if fr < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = fr;
            continue;
        }
        // Contraction.
        let contracted = blend(&centroid, &simplex[worst], 0.5);
        let fc = f(&contracted);
        if fc < values[worst] {
            simplex[worst] = contracted;
            values[worst] = fc;
            continue;
        }
        // Shrink toward the best.
        let best_point = simplex[best].clone();
        for &i in idx.iter().skip(1) {
            simplex[i] = blend(&best_point, &simplex[i], 0.5);
            values[i] = f(&simplex[i]);
        }
    }

    let (mut bi, mut bv) = (0usize, values[0]);
    for (i, &v) in values.iter().enumerate() {
        if v < bv {
            bi = i;
            bv = v;
        }
    }
    Ok(OptimizeResult {
        x: simplex[bi].clone(),
        value: bv,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_shifted_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.5).powi(2) + 7.0,
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        )
        .unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.5).abs() < 1e-4);
        assert!((r.value - 7.0).abs() < 1e-8);
    }

    #[test]
    fn handles_rosenbrock() {
        let r = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_iterations: 8000,
                tolerance: 1e-14,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional() {
        let r = nelder_mead(
            |x| (x[0] - 42.0).powi(2),
            &[1.0],
            NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 42.0).abs() < 1e-4);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[100.0, -100.0, 50.0],
            NelderMeadOptions {
                max_iterations: 3,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn sigmoid_fit_use_case() {
        // The actual downstream use: fit Xmax/(1+exp(-(n-n0)/s)) to points.
        let truth = |n: f64| 120.0 / (1.0 + (-(n - 80.0) / 25.0).exp());
        let data: Vec<(f64, f64)> = [10.0, 40.0, 80.0, 120.0, 200.0]
            .iter()
            .map(|&n| (n, truth(n)))
            .collect();
        let sse = |p: &[f64]| {
            if p[0] <= 0.0 || p[2] <= 0.0 {
                return 1e12;
            }
            data.iter()
                .map(|&(n, x)| {
                    let m = p[0] / (1.0 + (-(n - p[1]) / p[2]).exp());
                    (m - x).powi(2)
                })
                .sum()
        };
        let r = nelder_mead(
            sse,
            &[130.0, 60.0, 20.0],
            NelderMeadOptions {
                max_iterations: 5000,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!((r.x[0] - 120.0).abs() < 1.0, "{:?}", r.x);
        assert!((r.x[1] - 80.0).abs() < 2.0);
        assert!((r.x[2] - 25.0).abs() < 2.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(nelder_mead(|x| x[0], &[], NelderMeadOptions::default()).is_err());
        assert!(nelder_mead(|x| x[0], &[f64::NAN], NelderMeadOptions::default()).is_err());
        let bad = NelderMeadOptions {
            tolerance: 0.0,
            ..NelderMeadOptions::default()
        };
        assert!(nelder_mead(|x| x[0], &[1.0], bad).is_err());
        assert!(nelder_mead(|_| f64::NAN, &[1.0], NelderMeadOptions::default()).is_err());
    }
}
