//! Erlang loss/delay formulas and M/M/c closed forms.
//!
//! These are *not* in the paper; they exist so the multi-server queueing code
//! elsewhere in the workspace (the exact multi-server MVA of paper Algorithm
//! 2, and the DES station model) can be cross-validated against independent
//! textbook results: an open M/M/c queue is the infinite-population limit the
//! multi-server station must approach, and a closed machine-repair model has
//! an exact product-form solution expressible through these functions.

use crate::NumericsError;

/// Erlang B (blocking probability of M/M/c/c) via the numerically stable
/// recurrence `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))` where
/// `a = λ/µ` is the offered load in Erlangs.
pub fn erlang_b(servers: usize, offered_load: f64) -> Result<f64, NumericsError> {
    if !(offered_load.is_finite() && offered_load >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            what: "offered load must be finite and >= 0",
        });
    }
    let mut b = 1.0;
    for k in 1..=servers {
        b = offered_load * b / (k as f64 + offered_load * b);
    }
    Ok(b)
}

/// Erlang C (probability of queueing in M/M/c) from Erlang B:
/// `C = c·B / (c − a·(1 − B))`. Requires `a < c` for stability.
pub fn erlang_c(servers: usize, offered_load: f64) -> Result<f64, NumericsError> {
    if servers == 0 {
        return Err(NumericsError::InvalidParameter {
            what: "servers must be >= 1",
        });
    }
    if !(offered_load.is_finite() && offered_load >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            what: "offered load must be finite and >= 0",
        });
    }
    if offered_load >= servers as f64 {
        return Err(NumericsError::InvalidParameter {
            what: "offered load must be < servers for a stable M/M/c",
        });
    }
    let b = erlang_b(servers, offered_load)?;
    let c = servers as f64;
    Ok(c * b / (c - offered_load * (1.0 - b)))
}

/// Steady-state metrics of an open M/M/c queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcMetrics {
    /// Server utilization `ρ = λ/(cµ)`.
    pub utilization: f64,
    /// Probability an arrival must wait (Erlang C).
    pub prob_wait: f64,
    /// Mean wait in queue `W_q`.
    pub wait_queue: f64,
    /// Mean sojourn (queue + service) `W = W_q + 1/µ`.
    pub sojourn: f64,
    /// Mean number in queue `L_q = λ·W_q`.
    pub num_in_queue: f64,
    /// Mean number in system `L = λ·W`.
    pub num_in_system: f64,
}

/// Solves an open M/M/c queue with arrival rate `lambda`, per-server service
/// rate `mu`, and `c` servers. Requires `λ < cµ`.
pub fn mmc(servers: usize, lambda: f64, mu: f64) -> Result<MmcMetrics, NumericsError> {
    if servers == 0 {
        return Err(NumericsError::InvalidParameter {
            what: "servers must be >= 1",
        });
    }
    if !(lambda.is_finite() && lambda > 0.0 && mu.is_finite() && mu > 0.0) {
        return Err(NumericsError::InvalidParameter {
            what: "lambda and mu must be finite and > 0",
        });
    }
    let a = lambda / mu;
    let c = servers as f64;
    if a >= c {
        return Err(NumericsError::InvalidParameter {
            what: "lambda must be < c*mu for stability",
        });
    }
    let pc = erlang_c(servers, a)?;
    let wq = pc / (c * mu - lambda);
    let w = wq + 1.0 / mu;
    Ok(MmcMetrics {
        utilization: a / c,
        prob_wait: pc,
        wait_queue: wq,
        sojourn: w,
        num_in_queue: lambda * wq,
        num_in_system: lambda * w,
    })
}

/// Exact solution of the closed machine-repair ("finite-source") model:
/// `n` customers cycling between an infinite-server think stage (mean `z`)
/// and a single queueing station with `c` servers (mean service `s`,
/// exponential). Returns `(throughput, mean number at the station)`.
///
/// Used to validate both the exact multi-server MVA (paper Algorithm 2) and
/// the DES: all three must agree on this product-form network.
pub fn machine_repair(n: usize, c: usize, s: f64, z: f64) -> Result<(f64, f64), NumericsError> {
    if c == 0 {
        return Err(NumericsError::InvalidParameter {
            what: "servers must be >= 1",
        });
    }
    if !(s.is_finite() && s > 0.0 && z.is_finite() && z >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            what: "s must be > 0 and z >= 0, both finite",
        });
    }
    // lint: float-eq-ok z = 0 is the validated exact degenerate no-think-time case
    if z == 0.0 && n > 0 {
        // Degenerate: all customers always at the station.
        let busy = n.min(c) as f64;
        return Ok((busy / s, n as f64));
    }
    // Unnormalized probability of k customers at the station:
    //   p(k) ∝ C(n,k)·k!/(z^k) · s^k / β(k)   with β(k) = ∏_{j≤k} min(j,c)
    // Standard finite-source multi-server derivation. The running product
    // spans hundreds of orders of magnitude for large n, so it is carried
    // in log space and normalized by its maximum before exponentiation.
    let mut log_terms = Vec::with_capacity(n + 1);
    let mut lt = 0.0f64;
    log_terms.push(lt);
    for k in 1..=n {
        let sources = (n - k + 1) as f64; // remaining thinkers
        let rate_in = sources / z;
        let service_rate = (k.min(c)) as f64 / s;
        lt += (rate_in / service_rate).ln();
        log_terms.push(lt);
    }
    let m = log_terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let terms: Vec<f64> = log_terms.iter().map(|l| (l - m).exp()).collect();
    let norm: f64 = terms.iter().sum();
    let mean_q: f64 = terms
        .iter()
        .enumerate()
        .map(|(k, p)| k as f64 * p)
        .sum::<f64>()
        / norm;
    // Throughput via Little on the think stage: X = (n − E[Q]) / z.
    let x = (n as f64 - mean_q) / z;
    Ok((x, mean_q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn erlang_b_known_values() {
        // Classic table value: a = 2 Erlangs, c = 3 => B ≈ 0.2105.
        let b = erlang_b(3, 2.0).unwrap();
        assert!(close(b, 4.0 / 19.0, 1e-12));
        // c = 0 means every arrival blocked.
        assert_eq!(erlang_b(0, 5.0).unwrap(), 1.0);
        // Zero load never blocks (with servers).
        assert_eq!(erlang_b(4, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn erlang_c_known_value() {
        // a = 2, c = 3: C = 3B/(3−2(1−B)) with B = 4/19 => C = 4/9.
        let c = erlang_c(3, 2.0).unwrap();
        assert!(close(c, 4.0 / 9.0, 1e-12));
    }

    #[test]
    fn erlang_c_requires_stability() {
        assert!(erlang_c(2, 2.0).is_err());
        assert!(erlang_c(2, 2.5).is_err());
    }

    #[test]
    fn mm1_special_case() {
        // M/M/1: W = 1/(µ−λ), L = ρ/(1−ρ).
        let m = mmc(1, 0.5, 1.0).unwrap();
        assert!(close(m.sojourn, 2.0, 1e-12));
        assert!(close(m.num_in_system, 1.0, 1e-12));
        assert!(close(m.utilization, 0.5, 1e-12));
        assert!(close(m.prob_wait, 0.5, 1e-12)); // Erlang C = ρ for c = 1
    }

    #[test]
    fn mmc_utilization_and_littles_law() {
        let m = mmc(4, 3.0, 1.0).unwrap();
        assert!(close(m.utilization, 0.75, 1e-12));
        assert!(close(m.num_in_queue, 3.0 * m.wait_queue, 1e-12));
        assert!(close(m.num_in_system, 3.0 * m.sojourn, 1e-12));
    }

    #[test]
    fn mmc_more_servers_less_waiting() {
        let w2 = mmc(2, 1.5, 1.0).unwrap().wait_queue;
        let w4 = mmc(4, 1.5, 1.0).unwrap().wait_queue;
        assert!(w4 < w2);
    }

    #[test]
    fn mmc_rejects_bad_inputs() {
        assert!(mmc(0, 1.0, 1.0).is_err());
        assert!(mmc(2, -1.0, 1.0).is_err());
        assert!(mmc(2, 1.0, f64::NAN).is_err());
        assert!(mmc(2, 2.0, 1.0).is_err());
    }

    #[test]
    fn machine_repair_single_customer() {
        // n = 1: X = 1/(s + z) exactly.
        let (x, q) = machine_repair(1, 4, 0.25, 1.0).unwrap();
        assert!(close(x, 1.0 / 1.25, 1e-12));
        assert!(close(q, x * 0.25, 1e-12)); // Little at the station
    }

    #[test]
    fn machine_repair_throughput_saturates_at_c_over_s() {
        let c = 2;
        let s = 0.5;
        let cap = c as f64 / s; // 4 jobs/s
        let (x_small, _) = machine_repair(1, c, s, 1.0).unwrap();
        let (x_big, _) = machine_repair(200, c, s, 1.0).unwrap();
        assert!(x_small < x_big);
        assert!(x_big <= cap + 1e-9);
        assert!(x_big > 0.99 * cap);
    }

    #[test]
    fn machine_repair_littles_law_at_station() {
        // X * R_station = E[Q]; R = E[Q]/X must also satisfy N = X(R+Z).
        let (x, q) = machine_repair(10, 3, 0.2, 1.0).unwrap();
        let r = q / x;
        assert!(close(10.0, x * (r + 1.0), 1e-9));
    }

    #[test]
    fn machine_repair_zero_think_time() {
        let (x, q) = machine_repair(5, 2, 0.5, 0.0).unwrap();
        assert!(close(x, 4.0, 1e-12)); // both servers busy
        assert!(close(q, 5.0, 1e-12));
    }

    #[test]
    fn machine_repair_rejects_bad_inputs() {
        assert!(machine_repair(5, 0, 0.5, 1.0).is_err());
        assert!(machine_repair(5, 2, -0.5, 1.0).is_err());
        assert!(machine_repair(5, 2, 0.5, -1.0).is_err());
    }
}
