//! Minimal deterministic property-test harness (std-only).
//!
//! Replaces the `proptest` dev-dependency: each property is an ordinary
//! function over a [`Gen`], run for a configurable number of seeded cases.
//! Every raw `u64` the generator hands out is recorded on a *tape*; when a
//! case fails, the harness replays the property with systematically
//! shrunken tapes (each draw tried at `0`, halved, and decremented, within
//! a bounded budget) and reports the smallest failure it finds together
//! with the case seed, so failures are reproducible and minimal-ish.
//!
//! ```
//! use mvasd_numerics::propcheck::{check, Config, Gen};
//!
//! check("addition commutes", &Config::default().cases(32), |g: &mut Gen| {
//!     let a = g.f64_in(-1e6, 1e6);
//!     let b = g.f64_in(-1e6, 1e6);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::{splitmix64, Xoshiro256pp};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Harness configuration: number of cases, base seed, shrink budget.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it via SplitMix64.
    pub seed: u64,
    /// Maximum shrink replays after a failure.
    pub max_shrink: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x4D56_4153_445F_5051, // "MVASD_PQ"
            max_shrink: 256,
        }
    }
}

impl Config {
    /// Sets the number of cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Source of generated values for one property case.
///
/// Wraps the RNG and records each raw draw so the harness can replay the
/// case with a mutated tape during shrinking. All higher-level generators
/// (`f64_in`, `usize_in`, `vec_f64`, …) bottom out in [`Gen::raw`].
pub struct Gen {
    rng: Xoshiro256pp,
    tape: Vec<u64>,
    replay: Vec<u64>,
    pos: usize,
}

impl Gen {
    fn replaying(seed: u64, tape: Vec<u64>) -> Self {
        Gen {
            rng: Xoshiro256pp::seed_from_u64(seed),
            tape: Vec::new(),
            replay: tape,
            pos: 0,
        }
    }

    /// One raw 64-bit draw (replayed from the shrink tape when active).
    pub fn raw(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            self.rng.next_u64()
        };
        self.pos += 1;
        self.tape.push(v);
        v
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + (hi - lo) * self.unit()
        }
    }

    /// Uniform `usize` in `[lo, hi]` (closed). Shrinks toward `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64 + 1;
        lo + (self.raw() % span) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.raw() & 1 == 1
    }

    /// Uniform choice among the elements of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose requires a non-empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// Vector of `f64`s with length in `[min_len, max_len]`, each element
    /// uniform in `[lo, hi)`.
    pub fn vec_f64(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one case; returns the tape plus the failure message, if any.
fn run_case<P: Fn(&mut Gen)>(seed: u64, tape: Vec<u64>, prop: &P) -> (Vec<u64>, Option<String>) {
    let mut g = Gen::replaying(seed, tape);
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
    let msg = outcome.err().map(|p| panic_message(p.as_ref()));
    (g.tape, msg)
}

/// Checks `prop` over `cfg.cases` seeded cases, shrinking on failure.
///
/// Panics with the property name, the derived case seed, and the failure
/// message of the smallest reproduction found. Properties express
/// expectations with ordinary `assert!` macros.
pub fn check<P: Fn(&mut Gen)>(name: &str, cfg: &Config, prop: P) {
    let mut seed_state = cfg.seed;
    for case in 0..cfg.cases {
        let case_seed = splitmix64(&mut seed_state);
        let (tape, failure) = run_case(case_seed, Vec::new(), &prop);
        let Some(first_msg) = failure else { continue };

        // Shrink: for each tape position try 0, v/2, v-1 (in that order),
        // keeping any mutation that still fails, within the replay budget.
        let mut best_tape = tape;
        let mut best_msg = first_msg;
        let mut budget = cfg.max_shrink;
        let mut progress = true;
        while progress && budget > 0 {
            progress = false;
            for i in 0..best_tape.len() {
                let v = best_tape[i];
                for candidate in [0, v / 2, v.wrapping_sub(1)] {
                    if candidate >= v || budget == 0 {
                        continue;
                    }
                    budget -= 1;
                    let mut t = best_tape.clone();
                    t[i] = candidate;
                    let (shrunk_tape, msg) = run_case(case_seed, t, &prop);
                    if let Some(m) = msg {
                        best_tape = shrunk_tape;
                        best_msg = m;
                        progress = true;
                        break;
                    }
                }
            }
        }
        panic!(
            "property '{name}' failed (case {case} of {cases}, seed {case_seed:#018X}, \
             {draws} draws after shrinking):\n{best_msg}",
            cases = cfg.cases,
            draws = best_tape.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("abs is nonnegative", &Config::default().cases(32), |g| {
            let x = g.f64_in(-100.0, 100.0);
            assert!(x.abs() >= 0.0);
        });
    }

    #[test]
    fn failing_property_reports_name_and_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always fails", &Config::default().cases(4), |g| {
                let x = g.usize_in(0, 1000);
                assert!(x > 2000, "x = {x}");
            });
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("always fails"), "got: {msg}");
        assert!(msg.contains("seed"), "got: {msg}");
    }

    #[test]
    fn shrinking_reduces_counterexample() {
        // The property fails for any x >= 10; shrinking should drive the
        // single raw draw down to (near) the threshold or zero-region.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("shrinks", &Config::default().cases(16), |g| {
                let x = g.usize_in(0, 1 << 20);
                assert!(x < 10, "x = {x}");
            });
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        // After tape shrinking the reported x must be far below the raw
        // uniform expectation (~2^19).
        let reported: usize = msg
            .rsplit("x = ")
            .next()
            .and_then(|s| s.trim().parse().ok())
            .expect("message carries the counterexample");
        assert!(reported < 100_000, "shrunk to {reported}: {msg}");
    }

    #[test]
    fn same_config_is_deterministic() {
        let collect = || {
            let vals = std::cell::RefCell::new(Vec::new());
            check("collect", &Config::default().cases(8), |g| {
                vals.borrow_mut().push(g.raw());
            });
            vals.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_respect_bounds() {
        check("bounds", &Config::default().cases(64), |g| {
            let f = g.f64_in(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            let u = g.usize_in(3, 5);
            assert!((3..=5).contains(&u));
            let v = g.vec_f64(2, 6, 0.5, 0.9);
            assert!(v.len() >= 2 && v.len() <= 6);
            assert!(v.iter().all(|x| (0.5..0.9).contains(x)));
            let c = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&c));
            let _ = g.bool();
        });
    }
}
