//! Interpolation of sampled service-demand curves.
//!
//! The paper's MVASD algorithm needs a continuous function `h` through the
//! measured `(concurrency, demand)` points (its Algorithm 3 writes
//! `SSⁿ_k ← h(a_k, b_k, n)`). Scilab's `interp()` — a cubic spline with value
//! clamping outside the sampled range (paper eq. 14) — is reproduced by
//! [`CubicSpline`] with [`Extrapolation::Clamp`]. The other interpolants
//! exist for the ablation studies: linear ([`LinearInterp`]), monotone cubic
//! ([`PchipInterp`], which cannot overshoot), the smoothing spline of paper
//! eq. 12 ([`SmoothingSpline`]), and global polynomial interpolation
//! ([`NewtonPolynomial`], which exhibits the Runge phenomenon the paper cites
//! as the reason for Chebyshev Nodes).

mod cubic;
mod linear;
mod pchip;
mod polynomial;
mod smoothing;

pub use cubic::{BoundaryCondition, CubicSpline};
pub use linear::LinearInterp;
pub use pchip::PchipInterp;
pub use polynomial::{runge, NewtonPolynomial};
pub use smoothing::SmoothingSpline;

/// Behaviour outside the sampled abscissa range `[x₁, xₙ]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolation {
    /// Peg to the boundary ordinate: `x < x₁ ⇒ y₁`, `x > xₙ ⇒ yₙ`.
    ///
    /// This is paper eq. 14 and the MVASD default: a demand measured at the
    /// highest tested concurrency is assumed to persist beyond it.
    #[default]
    Clamp,
    /// Evaluate the boundary polynomial piece outside the range (natural
    /// extension). Risky for demand curves — a falling spline can cross zero.
    Extend,
    /// Continue linearly with the boundary slope.
    Linear,
}

/// A continuous function fitted through (or near) sampled points.
///
/// All implementations are immutable after construction and `Send + Sync`, so
/// they can be shared freely across experiment-sweep threads.
pub trait Interpolant: Send + Sync {
    /// Evaluates the interpolant at `x`.
    fn eval(&self, x: f64) -> f64;

    /// First derivative at `x`. Outside the knot range, consistent with the
    /// extrapolation mode (0 for `Clamp`, boundary slope for `Linear`).
    fn deriv(&self, x: f64) -> f64;

    /// The sampled abscissa range `[x₁, xₙ]`.
    fn domain(&self) -> (f64, f64);

    /// Evaluates at many points (convenience for table generation).
    fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }
}

/// Locates the segment index `i` such that `x ∈ [xs[i], xs[i+1]]`, clamping
/// to the first/last segment outside the range. `xs` must be strictly
/// increasing with `len ≥ 2` (guaranteed by interpolant constructors).
pub(crate) fn segment_index(xs: &[f64], x: f64) -> usize {
    debug_assert!(xs.len() >= 2);
    if xs.first().map_or(true, |&lo| x <= lo) {
        return 0;
    }
    let last = xs.len() - 2;
    if x >= xs[xs.len() - 1] {
        return last;
    }
    // partition_point returns the first index with xs[i] > x, so the segment
    // start is one before it.
    let idx = xs.partition_point(|&k| k <= x);
    (idx - 1).min(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_lookup_interior_and_boundaries() {
        let xs = [0.0, 1.0, 2.0, 4.0];
        assert_eq!(segment_index(&xs, -1.0), 0);
        assert_eq!(segment_index(&xs, 0.0), 0);
        assert_eq!(segment_index(&xs, 0.5), 0);
        assert_eq!(segment_index(&xs, 1.0), 1);
        assert_eq!(segment_index(&xs, 1.5), 1);
        assert_eq!(segment_index(&xs, 3.9), 2);
        assert_eq!(segment_index(&xs, 4.0), 2);
        assert_eq!(segment_index(&xs, 99.0), 2);
    }

    #[test]
    fn segment_lookup_two_points() {
        let xs = [10.0, 20.0];
        assert_eq!(segment_index(&xs, 5.0), 0);
        assert_eq!(segment_index(&xs, 15.0), 0);
        assert_eq!(segment_index(&xs, 25.0), 0);
    }

    #[test]
    fn extrapolation_default_is_clamp() {
        assert_eq!(Extrapolation::default(), Extrapolation::Clamp);
    }
}
