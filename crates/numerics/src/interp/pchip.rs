//! Monotone cubic interpolation (PCHIP, Fritsch–Carlson 1980).
//!
//! Service-demand curves are physically positive and usually monotone in
//! concurrency; an unconstrained cubic spline through noisy measurements can
//! overshoot (the "extra undulations" of the paper's Fig. 15). PCHIP is the
//! shape-preserving alternative used in the ablation benches: it never
//! overshoots the data and preserves local monotonicity, at the cost of only
//! C¹ (not C²) continuity.

use super::{segment_index, Extrapolation, Interpolant};
use crate::{validate_knots, NumericsError};

/// Monotonicity-preserving piecewise cubic Hermite interpolant.
#[derive(Debug, Clone)]
pub struct PchipInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// First derivatives at the knots.
    d: Vec<f64>,
    extrapolation: Extrapolation,
}

impl PchipInterp {
    /// Builds a PCHIP interpolant through `(xs, ys)`; needs ≥ 2 knots.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        validate_knots(xs, ys, 2)?;
        let n = xs.len();
        let h: Vec<f64> = (0..n - 1).map(|i| xs[i + 1] - xs[i]).collect();
        let delta: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();

        let mut d = vec![0.0; n];
        if n == 2 {
            // Two knots: the interpolant is the secant line.
            d.fill(*delta.first().expect("two knots give one secant"));
        } else {
            // Interior: weighted harmonic mean when secants share sign.
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let w1 = 2.0 * h[i] + h[i - 1];
                    let w2 = h[i] + 2.0 * h[i - 1];
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                } else {
                    d[i] = 0.0;
                }
            }
            // Endpoints: one-sided three-point estimates. n >= 3 here, so
            // both slices hold at least two elements.
            if let (Some(slot), [h0, h1, ..], [del0, del1, ..]) =
                (d.first_mut(), h.as_slice(), delta.as_slice())
            {
                *slot = Self::edge_slope(*h0, *h1, *del0, *del1);
            }
            d[n - 1] = Self::edge_slope(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
        }

        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            d,
            extrapolation: Extrapolation::Clamp,
        })
    }

    /// One-sided three-point estimate for endpoint slopes with the
    /// Fritsch–Carlson monotonicity clamps.
    fn edge_slope(h0: f64, h1: f64, del0: f64, del1: f64) -> f64 {
        let mut d = ((2.0 * h0 + h1) * del0 - h0 * del1) / (h0 + h1);
        // lint: float-eq-ok Fritsch-Carlson clamps key on the exact flat-segment case
        if d.signum() != del0.signum() || del0 == 0.0 {
            d = 0.0;
        } else if del0.signum() != del1.signum() && d.abs() > 3.0 * del0.abs() {
            d = 3.0 * del0;
        }
        d
    }

    /// Sets the extrapolation policy (builder style).
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// The knot abscissae.
    pub fn knots_x(&self) -> &[f64] {
        &self.xs
    }

    /// Knot slopes chosen by the Fritsch–Carlson rules.
    pub fn slopes(&self) -> &[f64] {
        &self.d
    }

    /// Evaluates the Hermite piece containing `x`: `(value, derivative)`.
    fn eval_piece(&self, x: f64) -> (f64, f64) {
        let i = segment_index(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        let (d0, d1) = (self.d[i], self.d[i + 1]);
        // Cubic Hermite basis.
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        let v = h00 * y0 + h10 * h * d0 + h01 * y1 + h11 * h * d1;
        let dh00 = 6.0 * t2 - 6.0 * t;
        let dh10 = 3.0 * t2 - 4.0 * t + 1.0;
        let dh01 = -6.0 * t2 + 6.0 * t;
        let dh11 = 3.0 * t2 - 2.0 * t;
        let dv = (dh00 * y0 + dh01 * y1) / h + dh10 * d0 + dh11 * d1;
        (v, dv)
    }
}

impl Interpolant for PchipInterp {
    fn eval(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo {
            return match self.extrapolation {
                Extrapolation::Clamp => *self.ys.first().expect("non-empty"),
                Extrapolation::Extend => self.eval_piece(x).0,
                Extrapolation::Linear => {
                    self.ys.first().expect("non-empty")
                        + self.d.first().expect("non-empty") * (x - lo)
                }
            };
        }
        if x > hi {
            return match self.extrapolation {
                Extrapolation::Clamp => *self.ys.last().expect("non-empty"),
                Extrapolation::Extend => self.eval_piece(x).0,
                Extrapolation::Linear => {
                    self.ys.last().expect("non-empty")
                        + self.d.last().expect("non-empty") * (x - hi)
                }
            };
        }
        self.eval_piece(x).0
    }

    fn deriv(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return match self.extrapolation {
                Extrapolation::Clamp => 0.0,
                Extrapolation::Extend => self.eval_piece(x).1,
                Extrapolation::Linear => {
                    if x < lo {
                        *self.d.first().expect("non-empty")
                    } else {
                        *self.d.last().expect("non-empty")
                    }
                }
            };
        }
        self.eval_piece(x).1
    }

    fn domain(&self) -> (f64, f64) {
        (
            *self.xs.first().expect("non-empty"),
            *self.xs.last().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn interpolates_knots() {
        let xs = [0.0, 1.0, 2.0, 4.0, 7.0];
        let ys = [5.0, 3.0, 2.5, 2.0, 1.9];
        let p = PchipInterp::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!(close(p.eval(*x), *y, 1e-12));
        }
    }

    #[test]
    fn preserves_monotonicity_on_decreasing_data() {
        // Falling demand curve; interpolant must be non-increasing everywhere.
        let xs = [1.0, 14.0, 28.0, 70.0, 140.0, 210.0];
        let ys = [0.016, 0.0145, 0.0138, 0.0127, 0.0121, 0.0119];
        let p = PchipInterp::new(&xs, &ys).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..=500 {
            let x = 1.0 + i as f64 * (209.0 / 500.0);
            let y = p.eval(x);
            assert!(y <= prev + 1e-12, "not monotone at x={x}");
            prev = y;
        }
    }

    #[test]
    fn never_overshoots_the_data_envelope() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 0.0, 1.0, 1.0, 1.0]; // step-ish data
        let p = PchipInterp::new(&xs, &ys).unwrap();
        for i in 0..=400 {
            let x = i as f64 * 0.01;
            let y = p.eval(x);
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot at {x}: {y}");
        }
    }

    #[test]
    fn flat_data_has_zero_slopes() {
        let p = PchipInterp::new(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        for s in p.slopes() {
            assert_eq!(*s, 0.0);
        }
        assert_eq!(p.eval(0.5), 4.0);
        assert_eq!(p.deriv(1.5), 0.0);
    }

    #[test]
    fn local_extremum_gets_zero_slope() {
        // Secants change sign at x=1 => knot slope forced to 0.
        let p = PchipInterp::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(p.slopes()[1], 0.0);
    }

    #[test]
    fn two_points_is_linear() {
        let p = PchipInterp::new(&[0.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!(close(p.eval(1.0), 2.0, 1e-12));
        assert!(close(p.deriv(0.7), 2.0, 1e-12));
    }

    #[test]
    fn clamp_extrapolation() {
        let p = PchipInterp::new(&[1.0, 2.0, 3.0], &[9.0, 7.0, 6.0]).unwrap();
        assert_eq!(p.eval(0.0), 9.0);
        assert_eq!(p.eval(10.0), 6.0);
        assert_eq!(p.deriv(10.0), 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let xs = [0.0, 1.0, 2.0, 3.5, 5.0];
        let ys = [1.0, 0.5, 0.4, 0.3, 0.28];
        let p = PchipInterp::new(&xs, &ys).unwrap();
        for i in 1..50 {
            let x = i as f64 * 0.1;
            let eps = 1e-6;
            let fd = (p.eval(x + eps) - p.eval(x - eps)) / (2.0 * eps);
            assert!(close(p.deriv(x), fd, 1e-4), "x={x}");
        }
    }
}
