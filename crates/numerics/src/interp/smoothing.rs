//! Smoothing spline — paper eq. 12.
//!
//! The paper defines the smoothing-spline estimate `ĥ` of the demand function
//! as the minimizer of
//!
//! ```text
//! Σᵢ (yᵢ − ĥ(xᵢ))² + λ ∫ ĥ″(x)² dx
//! ```
//!
//! "where λ ≥ 0 is a smoothing parameter, controlling the trade-off between
//! fidelity to the data and roughness of the function estimate."
//!
//! Implementation follows Green & Silverman (1994): the minimizer is a
//! natural cubic spline with knots at the data sites; its interior second
//! derivatives `γ` solve the banded system `(W + λ Δ Δᵀ) γ = Δ y`, and the
//! fitted ordinates are `ŷ = y − λ Δᵀ γ`. Both `W` (tridiagonal) and
//! `Δ Δᵀ` (pentadiagonal) are assembled band-wise and solved in `O(n)` with
//! the banded LDLᵀ solver from [`crate::banded`].

use super::{CubicSpline, Extrapolation, Interpolant};
use crate::banded::solve_spd_pentadiagonal;
use crate::{validate_knots, NumericsError};

/// Cubic smoothing spline (paper eq. 12).
///
/// * `λ = 0` reproduces the natural interpolating spline;
/// * `λ → ∞` tends to the least-squares regression line.
#[derive(Debug, Clone)]
pub struct SmoothingSpline {
    /// The natural spline through the fitted values (the minimizer itself).
    spline: CubicSpline,
    /// Fitted ordinates `ŷ`.
    fitted: Vec<f64>,
    /// The smoothing parameter used.
    lambda: f64,
    /// Residual sum of squares `Σ (yᵢ − ŷᵢ)²`.
    rss: f64,
}

impl SmoothingSpline {
    /// Fits a smoothing spline through `(xs, ys)` with parameter
    /// `lambda ≥ 0`. Needs at least 3 strictly increasing knots.
    pub fn fit(xs: &[f64], ys: &[f64], lambda: f64) -> Result<Self, NumericsError> {
        validate_knots(xs, ys, 3)?;
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(NumericsError::InvalidParameter {
                what: "lambda must be finite and >= 0",
            });
        }
        let n = xs.len();
        let k = n - 2; // number of interior knots / rows of Δ
        let h: Vec<f64> = (0..n - 1).map(|i| xs[i + 1] - xs[i]).collect();

        // Row j of Δ touches columns j, j+1, j+2 with entries p, q, r.
        let p: Vec<f64> = (0..k).map(|j| 1.0 / h[j]).collect();
        let r: Vec<f64> = (0..k).map(|j| 1.0 / h[j + 1]).collect();
        let q: Vec<f64> = (0..k).map(|j| -(p[j] + r[j])).collect();

        // Bands of A = W + λ Δ Δᵀ (symmetric, pentadiagonal).
        let mut d0 = vec![0.0; k];
        let mut d1 = vec![0.0; k.saturating_sub(1)];
        let mut d2 = vec![0.0; k.saturating_sub(2)];
        for j in 0..k {
            let w_jj = (h[j] + h[j + 1]) / 3.0;
            d0[j] = w_jj + lambda * (p[j] * p[j] + q[j] * q[j] + r[j] * r[j]);
            if j + 1 < k {
                let w_off = h[j + 1] / 6.0;
                d1[j] = w_off + lambda * (q[j] * p[j + 1] + r[j] * q[j + 1]);
            }
            if j + 2 < k {
                d2[j] = lambda * (r[j] * p[j + 2]);
            }
        }

        // RHS: Δ y (the second divided differences).
        let rhs: Vec<f64> = (0..k)
            .map(|j| p[j] * ys[j] + q[j] * ys[j + 1] + r[j] * ys[j + 2])
            .collect();

        let gamma = solve_spd_pentadiagonal(&d0, &d1, &d2, &rhs)?;

        // ŷ = y − λ Δᵀ γ.
        let mut fitted = ys.to_vec();
        for j in 0..k {
            fitted[j] -= lambda * p[j] * gamma[j];
            fitted[j + 1] -= lambda * q[j] * gamma[j];
            fitted[j + 2] -= lambda * r[j] * gamma[j];
        }

        let rss = ys
            .iter()
            .zip(fitted.iter())
            .map(|(y, f)| (y - f) * (y - f))
            .sum();

        let spline = CubicSpline::natural(xs, &fitted)?;
        Ok(Self {
            spline,
            fitted,
            lambda,
            rss,
        })
    }

    /// Sets the extrapolation policy (builder style).
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.spline = self.spline.with_extrapolation(e);
        self
    }

    /// Fitted ordinates `ŷᵢ` at the knots.
    pub fn fitted(&self) -> &[f64] {
        &self.fitted
    }

    /// The smoothing parameter this fit used.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Residual sum of squares (the fidelity term of paper eq. 12).
    pub fn rss(&self) -> f64 {
        self.rss
    }

    /// The roughness penalty `∫ ĥ″(x)² dx` (exact, since `ĥ″` is piecewise
    /// linear).
    pub fn roughness(&self) -> f64 {
        self.spline.roughness()
    }

    /// The eq. 12 objective value: `RSS + λ·roughness`.
    pub fn objective(&self) -> f64 {
        self.rss + self.lambda * self.roughness()
    }

    /// Access to the underlying natural spline (for derivative queries).
    pub fn as_spline(&self) -> &CubicSpline {
        &self.spline
    }
}

impl Interpolant for SmoothingSpline {
    fn eval(&self, x: f64) -> f64 {
        self.spline.eval(x)
    }

    fn deriv(&self, x: f64) -> f64 {
        self.spline.deriv(x)
    }

    fn domain(&self) -> (f64, f64) {
        self.spline.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::linear_regression;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn lambda_zero_interpolates() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 3.0, 2.0, 5.0, 4.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!(close(s.eval(*x), *y, 1e-9));
        }
        assert!(s.rss() < 1e-18);
    }

    #[test]
    fn huge_lambda_tends_to_regression_line() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.1, 1.2, 1.9, 3.1, 3.9, 5.2];
        let s = SmoothingSpline::fit(&xs, &ys, 1e9).unwrap();
        let reg = linear_regression(&xs, &ys).unwrap();
        for &x in &xs {
            let line = reg.intercept + reg.slope * x;
            assert!(
                close(s.eval(x), line, 1e-3),
                "x={x}: {} vs {line}",
                s.eval(x)
            );
        }
        // Essentially straight => negligible roughness.
        assert!(s.roughness() < 1e-10);
    }

    #[test]
    fn smoothing_reduces_roughness_monotonically() {
        let xs: Vec<f64> = (0..12).map(|i| i as f64).collect();
        // Noisy falling demand curve.
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                0.02 * (-x / 6.0_f64).exp()
                    + if (x as usize).is_multiple_of(2) {
                        1e-3
                    } else {
                        -1e-3
                    }
            })
            .collect();
        let mut prev_rough = f64::INFINITY;
        let mut prev_rss = -1.0;
        for lam in [0.0, 1e-6, 1e-4, 1e-2, 1.0] {
            let s = SmoothingSpline::fit(&xs, &ys, lam).unwrap();
            assert!(s.roughness() <= prev_rough + 1e-12, "roughness at λ={lam}");
            assert!(s.rss() >= prev_rss - 1e-12, "rss at λ={lam}");
            prev_rough = s.roughness();
            prev_rss = s.rss();
        }
    }

    #[test]
    fn fitted_preserves_mean_roughly() {
        // Δᵀγ sums to zero per column structure, so the fitted values keep
        // the data's sum: Σ(y - ŷ) = λ Σcols(Δᵀγ) = 0 only when p,q,r sum to
        // zero per row, which they do column-summed — verify numerically.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 3.0, 5.0, 6.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.5).unwrap();
        let sum_y: f64 = ys.iter().sum();
        let sum_f: f64 = s.fitted().iter().sum();
        assert!(close(sum_y, sum_f, 1e-9));
    }

    #[test]
    fn rejects_bad_lambda() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 2.0];
        assert!(SmoothingSpline::fit(&xs, &ys, -1.0).is_err());
        assert!(SmoothingSpline::fit(&xs, &ys, f64::NAN).is_err());
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(SmoothingSpline::fit(&[0.0, 1.0], &[0.0, 1.0], 0.1).is_err());
    }

    #[test]
    fn objective_consistent() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 0.0, 1.5, 0.5, 1.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.25).unwrap();
        assert!(close(s.objective(), s.rss() + 0.25 * s.roughness(), 1e-12));
    }

    #[test]
    fn smoother_fit_has_no_worse_objective_than_interpolant_at_its_lambda() {
        // The λ-minimizer must beat the λ=0 spline evaluated in the λ
        // objective (it is the argmin).
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 1.3).sin()).collect();
        let lam = 0.1;
        let smooth = SmoothingSpline::fit(&xs, &ys, lam).unwrap();
        let interp = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        let interp_objective_at_lam = interp.rss() + lam * interp.roughness();
        assert!(smooth.objective() <= interp_objective_at_lam + 1e-9);
    }
}
