//! Global polynomial interpolation in Newton form.
//!
//! Included to *demonstrate* the Runge phenomenon the paper cites (Section 8:
//! "the problem of oscillation that occurs when using polynomial
//! interpolation over a set of equi-spaced interpolation points") and to
//! validate the Chebyshev-node error bound of eq. 18–19. Production code in
//! the suite uses piecewise splines; this type is for the analysis benches.

use super::{Extrapolation, Interpolant};
use crate::{validate_knots, NumericsError};

/// Newton-form interpolating polynomial through `(xs, ys)`.
#[derive(Debug, Clone)]
pub struct NewtonPolynomial {
    xs: Vec<f64>,
    /// Divided-difference coefficients `f[x₀], f[x₀,x₁], …`.
    coeffs: Vec<f64>,
    extrapolation: Extrapolation,
}

impl NewtonPolynomial {
    /// Builds the unique degree-`n−1` polynomial through `n ≥ 1` points.
    /// Unlike the spline constructors, a single point is allowed (a constant).
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        if xs.len() == 1 {
            if !xs[0].is_finite() || !ys[0].is_finite() {
                return Err(NumericsError::NonFinite { what: "knot" });
            }
            return Ok(Self {
                xs: xs.to_vec(),
                coeffs: ys.to_vec(),
                extrapolation: Extrapolation::Extend,
            });
        }
        validate_knots(xs, ys, 1)?;
        let n = xs.len();
        let mut coeffs = ys.to_vec();
        // In-place divided-difference table: after pass k, coeffs[i] holds
        // f[x_{i-k}, ..., x_i] for i >= k.
        for k in 1..n {
            for i in (k..n).rev() {
                coeffs[i] = (coeffs[i] - coeffs[i - 1]) / (xs[i] - xs[i - k]);
            }
        }
        Ok(Self {
            xs: xs.to_vec(),
            coeffs,
            // A global polynomial is defined everywhere; Extend is natural.
            extrapolation: Extrapolation::Extend,
        })
    }

    /// Sets the extrapolation policy (builder style). `Clamp` pegs values
    /// outside the knot range — useful when comparing against splines.
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// The polynomial degree (`n − 1`).
    pub fn degree(&self) -> usize {
        self.xs.len() - 1
    }

    /// Newton coefficients (divided differences).
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Horner-style nested evaluation of the Newton form.
    fn eval_raw(&self, x: f64) -> f64 {
        let n = self.coeffs.len();
        let mut acc = self.coeffs[n - 1];
        for i in (0..n - 1).rev() {
            acc = acc * (x - self.xs[i]) + self.coeffs[i];
        }
        acc
    }

    /// Derivative via the product-rule recursion on the Newton form.
    fn deriv_raw(&self, x: f64) -> f64 {
        let n = self.coeffs.len();
        // Evaluate p and p' simultaneously with nested form.
        let mut p = self.coeffs[n - 1];
        let mut dp = 0.0;
        for i in (0..n - 1).rev() {
            dp = dp * (x - self.xs[i]) + p;
            p = p * (x - self.xs[i]) + self.coeffs[i];
        }
        dp
    }
}

impl Interpolant for NewtonPolynomial {
    fn eval(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if self.extrapolation == Extrapolation::Clamp {
            if x < lo {
                return self.eval_raw(lo);
            }
            if x > hi {
                return self.eval_raw(hi);
            }
        }
        self.eval_raw(x)
    }

    fn deriv(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if self.extrapolation == Extrapolation::Clamp && (x < lo || x > hi) {
            return 0.0;
        }
        self.deriv_raw(x)
    }

    fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty"))
    }
}

/// The Runge test function `f(x) = 1 / (1 + 25 x²)`, the canonical example of
/// equi-spaced polynomial interpolation divergence on `[-1, 1]`.
pub fn runge(x: f64) -> f64 {
    1.0 / (1.0 + 25.0 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev::chebyshev_nodes;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn constant_polynomial() {
        let p = NewtonPolynomial::new(&[3.0], &[7.0]).unwrap();
        assert_eq!(p.eval(100.0), 7.0);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.deriv(0.0), 0.0);
    }

    #[test]
    fn reproduces_line_and_parabola() {
        let p = NewtonPolynomial::new(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!(close(p.eval(2.0), 5.0, 1e-12));
        assert!(close(p.deriv(0.5), 2.0, 1e-12));

        let f = |x: f64| 2.0 * x * x - x + 1.0;
        let xs = [-1.0, 0.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let p = NewtonPolynomial::new(&xs, &ys).unwrap();
        for i in -10..=10 {
            let x = i as f64 * 0.3;
            assert!(close(p.eval(x), f(x), 1e-10));
            assert!(close(p.deriv(x), 4.0 * x - 1.0, 1e-10));
        }
    }

    #[test]
    fn interpolates_knots_high_degree() {
        let xs: Vec<f64> = (0..9).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x).sin()).collect();
        let p = NewtonPolynomial::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!(close(p.eval(*x), *y, 1e-9));
        }
    }

    #[test]
    fn runge_phenomenon_equispaced_vs_chebyshev() {
        // Degree-14 interpolation of the Runge function: equi-spaced nodes
        // diverge near the boundary, Chebyshev nodes stay accurate.
        let n = 15;
        let eq_xs: Vec<f64> = (0..n)
            .map(|i| -1.0 + 2.0 * i as f64 / (n - 1) as f64)
            .collect();
        let eq_ys: Vec<f64> = eq_xs.iter().map(|&x| runge(x)).collect();
        let p_eq = NewtonPolynomial::new(&eq_xs, &eq_ys).unwrap();

        let mut ch_xs = chebyshev_nodes(n, -1.0, 1.0);
        ch_xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ch_ys: Vec<f64> = ch_xs.iter().map(|&x| runge(x)).collect();
        let p_ch = NewtonPolynomial::new(&ch_xs, &ch_ys).unwrap();

        let mut max_eq: f64 = 0.0;
        let mut max_ch: f64 = 0.0;
        for i in 0..=1000 {
            let x = -1.0 + 2.0 * i as f64 / 1000.0;
            max_eq = max_eq.max((p_eq.eval(x) - runge(x)).abs());
            max_ch = max_ch.max((p_ch.eval(x) - runge(x)).abs());
        }
        assert!(
            max_eq > 1.0,
            "equi-spaced should oscillate wildly: {max_eq}"
        );
        assert!(max_ch < 0.2, "Chebyshev should stay tame: {max_ch}");
        assert!(max_ch < max_eq / 10.0);
    }

    #[test]
    fn clamp_extrapolation_pegs_values() {
        let p = NewtonPolynomial::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 4.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Clamp);
        assert!(close(p.eval(-5.0), 0.0, 1e-12));
        assert!(close(p.eval(10.0), 4.0, 1e-12));
        assert_eq!(p.deriv(10.0), 0.0);
    }

    #[test]
    fn rejects_duplicate_abscissae() {
        assert!(NewtonPolynomial::new(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }
}
