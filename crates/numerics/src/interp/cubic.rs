//! Cubic-spline interpolation — the reproduction of Scilab's `interp()` used
//! by the paper (Section 6): "a continuous and derivable piece-wise function
//! h(x) … a set of cubic polynomials, each one q_m(X) being defined on
//! [x_m, x_{m+1}] and connected in values and slopes to both its neighbours",
//! with the boundary values pegged outside the sampled range (eq. 14).
//!
//! The spline is built in *moment* form: with `M_i = S''(x_i)` the interior
//! C²-continuity conditions give a tridiagonal system
//!
//! ```text
//! (h_{i-1}/6)·M_{i-1} + ((h_{i-1}+h_i)/3)·M_i + (h_i/6)·M_{i+1}
//!     = (y_{i+1}-y_i)/h_i − (y_i−y_{i-1})/h_{i-1}
//! ```
//!
//! closed by one of three boundary conditions ([`BoundaryCondition`]).

use super::{segment_index, Extrapolation, Interpolant};
use crate::banded::solve_tridiagonal;
use crate::{validate_knots, NumericsError};

/// End conditions that close the spline moment system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BoundaryCondition {
    /// Zero second derivative at both ends (`M₀ = Mₙ = 0`).
    Natural,
    /// Prescribed first derivatives (slopes) at both ends.
    Clamped {
        /// `S'(x₁)`.
        start_slope: f64,
        /// `S'(xₙ)`.
        end_slope: f64,
    },
    /// Third-derivative continuity across the second and second-to-last
    /// knots — the MATLAB/Scilab default, and ours. Falls back to
    /// [`BoundaryCondition::Natural`] when fewer than 4 points are supplied
    /// (not-a-knot is under-determined there).
    #[default]
    NotAKnot,
}

/// A C² piecewise-cubic interpolant through `(xs, ys)`.
///
/// Evaluation of the value and its first three derivatives mirrors Scilab's
/// `interp()` outputs `(yq, yq1, yq2, yq3)` (paper eq. 13).
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives (moments) at the knots.
    m: Vec<f64>,
    extrapolation: Extrapolation,
}

impl CubicSpline {
    /// Builds a cubic spline through `(xs, ys)` with the given boundary
    /// condition. Requires at least 2 strictly increasing knots; with exactly
    /// 2 knots every boundary condition degenerates to the straight line
    /// (moments zero) except `Clamped`, which still honours its end slopes
    /// when 3+ knots are available.
    pub fn new(xs: &[f64], ys: &[f64], bc: BoundaryCondition) -> Result<Self, NumericsError> {
        validate_knots(xs, ys, 2)?;
        let n = xs.len();
        if let BoundaryCondition::Clamped {
            start_slope,
            end_slope,
        } = bc
        {
            if !start_slope.is_finite() || !end_slope.is_finite() {
                return Err(NumericsError::NonFinite {
                    what: "clamped boundary slope",
                });
            }
        }

        let m = if n == 2 {
            match (bc, xs, ys) {
                // With two points the clamped spline is the unique cubic with
                // the prescribed end slopes; solve its 2x2 moment system.
                (
                    BoundaryCondition::Clamped {
                        start_slope,
                        end_slope,
                    },
                    [x0, x1],
                    [y0, y1],
                ) => {
                    let h = x1 - x0;
                    let secant = (y1 - y0) / h;
                    // (h/3) M0 + (h/6) M1 = secant - s0
                    // (h/6) M0 + (h/3) M1 = s1 - secant
                    let a = h / 3.0;
                    let b = h / 6.0;
                    let r0 = secant - start_slope;
                    let r1 = end_slope - secant;
                    let det = a * a - b * b;
                    vec![(a * r0 - b * r1) / det, (a * r1 - b * r0) / det]
                }
                _ => vec![0.0; 2],
            }
        } else {
            Self::solve_moments(xs, ys, bc)?
        };

        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            m,
            extrapolation: Extrapolation::Clamp,
        })
    }

    /// Sets the extrapolation policy (builder style).
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// Constructs a natural spline through fitted values — used by the
    /// smoothing spline, whose solution is exactly the natural interpolating
    /// spline of its own fitted ordinates.
    pub(crate) fn natural(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        Self::new(xs, ys, BoundaryCondition::Natural)
    }

    fn solve_moments(
        xs: &[f64],
        ys: &[f64],
        bc: BoundaryCondition,
    ) -> Result<Vec<f64>, NumericsError> {
        let n = xs.len();
        let h: Vec<f64> = (0..n - 1).map(|i| xs[i + 1] - xs[i]).collect();
        let secant = |i: usize| (ys[i + 1] - ys[i]) / h[i];

        match bc {
            BoundaryCondition::Natural => {
                // Solve for interior moments only; M0 = M_{n-1} = 0.
                let k = n - 2;
                let mut diag = vec![0.0; k];
                let mut sub = vec![0.0; k.saturating_sub(1)];
                let mut sup = vec![0.0; k.saturating_sub(1)];
                let mut rhs = vec![0.0; k];
                for j in 0..k {
                    let i = j + 1; // knot index
                    diag[j] = (h[i - 1] + h[i]) / 3.0;
                    rhs[j] = secant(i) - secant(i - 1);
                    if j > 0 {
                        sub[j - 1] = h[i - 1] / 6.0;
                    }
                    if j + 1 < k {
                        sup[j] = h[i] / 6.0;
                    }
                }
                let interior = solve_tridiagonal(&sub, &diag, &sup, &rhs)?;
                let mut m = vec![0.0; n];
                m[1..1 + k].copy_from_slice(&interior);
                Ok(m)
            }
            BoundaryCondition::Clamped {
                start_slope,
                end_slope,
            } => {
                // Full n-variable tridiagonal system with derivative rows.
                // Both off-diagonals are h/6 elementwise (the derivative rows
                // happen to follow the interior pattern), so one vector
                // serves as sub- and super-diagonal.
                let off: Vec<f64> = h.iter().map(|hi| hi / 6.0).collect();
                let diag: Vec<f64> = (0..n)
                    .map(|i| match i {
                        0 => h.first().map_or(0.0, |h0| h0 / 3.0),
                        i if i == n - 1 => h.last().map_or(0.0, |hn| hn / 3.0),
                        i => (h[i - 1] + h[i]) / 3.0,
                    })
                    .collect();
                let rhs: Vec<f64> = (0..n)
                    .map(|i| match i {
                        0 => secant(0) - start_slope,
                        i if i == n - 1 => end_slope - secant(n - 2),
                        i => secant(i) - secant(i - 1),
                    })
                    .collect();
                solve_tridiagonal(&off, &diag, &off, &rhs)
            }
            BoundaryCondition::NotAKnot => {
                if n < 4 {
                    // Under-determined; natural is the conventional fallback.
                    return Self::solve_moments(xs, ys, BoundaryCondition::Natural);
                }
                // Not-a-knot: S''' continuous at x_1 and x_{n-2}:
                //   (M1 − M0)/h0 = (M2 − M1)/h1
                //   (M_{n-1} − M_{n-2})/h_{n-2} = (M_{n-2} − M_{n-3})/h_{n-3}
                // Express the boundary moments in terms of their neighbours
                //   M0 = M1 + (h0/h1)(M1 − M2)
                //   M_{n-1} = M_{n-2} + (h_{n-2}/h_{n-3})(M_{n-2} − M_{n-3})
                // and substitute into the first/last interior equations,
                // leaving a tridiagonal system in M_1..M_{n-2}.
                let k = n - 2;
                let (h0, h1) = match h.as_slice() {
                    [h0, h1, ..] => (*h0, *h1),
                    _ => return Self::solve_moments(xs, ys, BoundaryCondition::Natural),
                };
                // First interior equation (i = 1) carries the term (h0/6)·M0
                // with M0 = (1 + h0/h1) M1 − (h0/h1) M2; the last interior
                // equation (i = n-2) carries (h_{n-2}/6)·M_{n-1} likewise.
                let r0 = h0 / h1;
                let rn = h[n - 2] / h[n - 3];
                let mut diag = vec![0.0; k];
                let mut sub = vec![0.0; k - 1];
                let mut sup = vec![0.0; k - 1];
                let mut rhs = vec![0.0; k];
                for j in 0..k {
                    let i = j + 1;
                    diag[j] = (h[i - 1] + h[i]) / 3.0;
                    rhs[j] = secant(i) - secant(i - 1);
                    if j > 0 {
                        sub[j - 1] = h[i - 1] / 6.0;
                    }
                    if j + 1 < k {
                        sup[j] = h[i] / 6.0;
                    }
                    if j == 0 {
                        diag[j] += (h0 / 6.0) * (1.0 + r0);
                        sup[j] += (h0 / 6.0) * (-r0);
                    }
                    if j == k - 1 {
                        diag[j] += (h[n - 2] / 6.0) * (1.0 + rn);
                        sub[j - 1] += (h[n - 2] / 6.0) * (-rn);
                    }
                }

                let interior = solve_tridiagonal(&sub, &diag, &sup, &rhs)?;
                let mut m = vec![0.0; n];
                m[1..1 + k].copy_from_slice(&interior);
                if let [m0, m1, m2, ..] = m.as_mut_slice() {
                    *m0 = (1.0 + r0) * *m1 - r0 * *m2;
                }
                m[n - 1] = (1.0 + rn) * m[n - 2] - rn * m[n - 3];
                Ok(m)
            }
        }
    }

    /// The knot abscissae.
    pub fn knots_x(&self) -> &[f64] {
        &self.xs
    }

    /// The knot ordinates.
    pub fn knots_y(&self) -> &[f64] {
        &self.ys
    }

    /// Second derivatives (moments) at the knots.
    pub fn moments(&self) -> &[f64] {
        &self.m
    }

    /// Evaluates the polynomial piece containing `x` (ignoring
    /// extrapolation policy), returning `(S, S', S'', S''')` — the analogue
    /// of Scilab's `(yq, yq1, yq2, yq3)` from paper eq. 13.
    pub fn eval_all(&self, x: f64) -> (f64, f64, f64, f64) {
        let i = segment_index(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = x - self.xs[i];
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        let (m0, m1) = (self.m[i], self.m[i + 1]);
        let c1 = (y1 - y0) / h - h * (2.0 * m0 + m1) / 6.0;
        let c2 = m0 / 2.0;
        let c3 = (m1 - m0) / (6.0 * h);
        let s = y0 + t * (c1 + t * (c2 + t * c3));
        let s1 = c1 + t * (2.0 * c2 + t * 3.0 * c3);
        let s2 = 2.0 * c2 + 6.0 * c3 * t;
        let s3 = 6.0 * c3;
        (s, s1, s2, s3)
    }

    /// Second derivative at `x` (within the domain; extrapolated consistently
    /// with the policy outside: 0 for `Clamp`/`Linear`).
    pub fn second_deriv(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return match self.extrapolation {
                Extrapolation::Extend => self.eval_all(x).2,
                _ => 0.0,
            };
        }
        self.eval_all(x).2
    }

    /// The integral `∫ S''(x)² dx` over the knot range — the roughness
    /// penalty of paper eq. 12. Since `S''` is piecewise linear this is
    /// exact: on each segment `∫(a+bt)² dt = h(a² + ab·h + b²h²/3)`.
    pub fn roughness(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.xs.len() - 1 {
            let h = self.xs[i + 1] - self.xs[i];
            let a = self.m[i];
            let b = (self.m[i + 1] - self.m[i]) / h;
            acc += h * (a * a + a * b * h + b * b * h * h / 3.0);
        }
        acc
    }
}

impl Interpolant for CubicSpline {
    fn eval(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo {
            return match self.extrapolation {
                Extrapolation::Clamp => *self.ys.first().expect("non-empty"),
                Extrapolation::Extend => self.eval_all(x).0,
                Extrapolation::Linear => {
                    let s1 = self.eval_all(lo).1;
                    self.ys.first().expect("non-empty") + s1 * (x - lo)
                }
            };
        }
        if x > hi {
            return match self.extrapolation {
                Extrapolation::Clamp => *self.ys.last().expect("non-empty"),
                Extrapolation::Extend => self.eval_all(x).0,
                Extrapolation::Linear => {
                    let s1 = self.eval_all(hi).1;
                    self.ys.last().expect("non-empty") + s1 * (x - hi)
                }
            };
        }
        self.eval_all(x).0
    }

    fn deriv(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return match self.extrapolation {
                Extrapolation::Clamp => 0.0,
                Extrapolation::Extend => self.eval_all(x).1,
                Extrapolation::Linear => self.eval_all(x.clamp(lo, hi)).1,
            };
        }
        self.eval_all(x).1
    }

    fn domain(&self) -> (f64, f64) {
        (
            *self.xs.first().expect("non-empty"),
            *self.xs.last().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn interpolates_knots_all_bcs() {
        let xs = [0.0, 1.0, 2.5, 4.0, 6.0];
        let ys = [1.0, -1.0, 0.5, 3.0, 2.0];
        for bc in [
            BoundaryCondition::Natural,
            BoundaryCondition::NotAKnot,
            BoundaryCondition::Clamped {
                start_slope: 0.0,
                end_slope: 1.0,
            },
        ] {
            let s = CubicSpline::new(&xs, &ys, bc).unwrap();
            for (x, y) in xs.iter().zip(ys.iter()) {
                assert!(close(s.eval(*x), *y, 1e-10), "bc {bc:?} at x={x}");
            }
        }
    }

    #[test]
    fn natural_has_zero_end_moments() {
        let s = CubicSpline::new(
            &[0.0, 1.0, 2.0, 3.0],
            &[0.0, 1.0, 0.0, 1.0],
            BoundaryCondition::Natural,
        )
        .unwrap();
        assert!(close(s.moments()[0], 0.0, 1e-14));
        assert!(close(*s.moments().last().unwrap(), 0.0, 1e-14));
        assert!(close(s.second_deriv(0.0), 0.0, 1e-12));
    }

    #[test]
    fn clamped_honours_end_slopes() {
        let s = CubicSpline::new(
            &[0.0, 1.0, 2.0, 3.0],
            &[0.0, 2.0, 1.0, 3.0],
            BoundaryCondition::Clamped {
                start_slope: -1.0,
                end_slope: 4.0,
            },
        )
        .unwrap();
        assert!(close(s.eval_all(0.0).1, -1.0, 1e-10));
        assert!(close(s.eval_all(3.0).1, 4.0, 1e-10));
    }

    #[test]
    fn not_a_knot_reproduces_a_cubic_exactly() {
        // A single cubic sampled at 5 points must be reproduced exactly by
        // the not-a-knot spline (that is the defining property).
        let f = |x: f64| 2.0 - x + 0.5 * x * x - 0.125 * x * x * x;
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
        for i in 0..=40 {
            let x = i as f64 * 0.1;
            assert!(close(s.eval(x), f(x), 1e-9), "x = {x}");
        }
    }

    #[test]
    fn clamped_reproduces_quadratic_with_matching_slopes() {
        let f = |x: f64| 1.0 + 3.0 * x - x * x;
        let fp = |x: f64| 3.0 - 2.0 * x;
        let xs: Vec<f64> = (0..6).map(|i| i as f64 * 0.8).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let s = CubicSpline::new(
            &xs,
            &ys,
            BoundaryCondition::Clamped {
                start_slope: fp(xs[0]),
                end_slope: fp(*xs.last().unwrap()),
            },
        )
        .unwrap();
        for i in 0..=40 {
            let x = i as f64 * 0.1;
            assert!(close(s.eval(x), f(x), 1e-9), "x = {x}");
            assert!(close(s.deriv(x), fp(x), 1e-8), "deriv at x = {x}");
        }
    }

    #[test]
    fn c1_and_c2_continuity_at_knots() {
        let xs = [0.0, 0.7, 1.9, 2.4, 3.8, 5.0];
        let ys = [3.0, -1.0, 2.0, 2.5, -0.5, 1.0];
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
        for &x in &xs[1..xs.len() - 1] {
            let eps = 1e-7;
            let (_, d_lo, dd_lo, _) = s.eval_all(x - eps);
            let (_, d_hi, dd_hi, _) = s.eval_all(x + eps);
            assert!(close(d_lo, d_hi, 1e-5), "C1 at {x}");
            assert!(close(dd_lo, dd_hi, 1e-4), "C2 at {x}");
        }
    }

    #[test]
    fn clamp_extrapolation_is_constant_eq14() {
        // Paper eq. 14: xq < x1 => yq = y1 ; xq > xn => yq = yn.
        let s = CubicSpline::new(
            &[1.0, 2.0, 3.0, 4.0],
            &[10.0, 5.0, 4.0, 3.5],
            BoundaryCondition::NotAKnot,
        )
        .unwrap();
        assert_eq!(s.eval(0.0), 10.0);
        assert_eq!(s.eval(-50.0), 10.0);
        assert_eq!(s.eval(4.5), 3.5);
        assert_eq!(s.eval(400.0), 3.5);
        assert_eq!(s.deriv(0.0), 0.0);
        assert_eq!(s.deriv(99.0), 0.0);
    }

    #[test]
    fn linear_extrapolation_continues_boundary_slope() {
        let s = CubicSpline::new(
            &[0.0, 1.0, 2.0, 3.0],
            &[0.0, 1.0, 2.0, 3.0],
            BoundaryCondition::NotAKnot,
        )
        .unwrap()
        .with_extrapolation(Extrapolation::Linear);
        // Identity data => spline is the identity; linear extension too.
        assert!(close(s.eval(-1.0), -1.0, 1e-9));
        assert!(close(s.eval(4.0), 4.0, 1e-9));
    }

    #[test]
    fn two_point_spline_is_a_line() {
        let s = CubicSpline::new(&[0.0, 2.0], &[1.0, 5.0], BoundaryCondition::NotAKnot).unwrap();
        assert!(close(s.eval(1.0), 3.0, 1e-12));
        assert!(close(s.eval_all(1.0).1, 2.0, 1e-12));
    }

    #[test]
    fn two_point_clamped_is_a_hermite_cubic() {
        let s = CubicSpline::new(
            &[0.0, 1.0],
            &[0.0, 0.0],
            BoundaryCondition::Clamped {
                start_slope: 1.0,
                end_slope: 1.0,
            },
        )
        .unwrap();
        // Hermite cubic with y=0 at both ends and slope 1 at both ends:
        // p(t) = t(1-t)(2t-1)... check endpoint slopes instead of a form.
        assert!(close(s.eval(0.0), 0.0, 1e-12));
        assert!(close(s.eval(1.0), 0.0, 1e-12));
        assert!(close(s.eval_all(0.0).1, 1.0, 1e-10));
        assert!(close(s.eval_all(1.0).1, 1.0, 1e-10));
    }

    #[test]
    fn three_point_not_a_knot_falls_back_to_natural() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 0.0];
        let nak = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot).unwrap();
        let nat = CubicSpline::new(&xs, &ys, BoundaryCondition::Natural).unwrap();
        for i in 0..=20 {
            let x = i as f64 * 0.1;
            assert!(close(nak.eval(x), nat.eval(x), 1e-12));
        }
    }

    #[test]
    fn roughness_zero_for_straight_line() {
        let s = CubicSpline::new(
            &[0.0, 1.0, 2.0, 3.0],
            &[1.0, 2.0, 3.0, 4.0],
            BoundaryCondition::Natural,
        )
        .unwrap();
        assert!(s.roughness() < 1e-18);
    }

    #[test]
    fn roughness_positive_for_curved_data() {
        let s = CubicSpline::new(
            &[0.0, 1.0, 2.0, 3.0],
            &[0.0, 1.0, 0.0, 1.0],
            BoundaryCondition::Natural,
        )
        .unwrap();
        assert!(s.roughness() > 0.1);
    }

    #[test]
    fn rejects_nan_slope() {
        assert!(CubicSpline::new(
            &[0.0, 1.0],
            &[0.0, 1.0],
            BoundaryCondition::Clamped {
                start_slope: f64::NAN,
                end_slope: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn falling_demand_curve_shape() {
        // Shaped like the paper's Fig. 5/10: demand falls with concurrency.
        let n = [1.0, 14.0, 28.0, 70.0, 140.0, 210.0];
        let d = [0.016, 0.0145, 0.0138, 0.0127, 0.0121, 0.0119];
        let s = CubicSpline::new(&n, &d, BoundaryCondition::NotAKnot).unwrap();
        // Interpolated values stay within the data envelope interior.
        for i in 1..=20 {
            let x = 10.0 * i as f64;
            let y = s.eval(x);
            assert!(y > 0.0110 && y < 0.0165, "x={x} y={y}");
        }
        // Clamped beyond the last sample.
        assert_eq!(s.eval(1500.0), 0.0119);
    }
}
