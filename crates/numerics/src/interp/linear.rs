//! Piecewise-linear interpolation — the baseline the paper compares cubic
//! splines against ("Compared to linear interpolation methods, spline
//! interpolation produces lower error at the cost of higher computational
//! complexity").

use super::{segment_index, Extrapolation, Interpolant};
use crate::{validate_knots, NumericsError};

/// Piecewise-linear interpolant through `(xs, ys)`.
#[derive(Debug, Clone)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
    extrapolation: Extrapolation,
}

impl LinearInterp {
    /// Builds a linear interpolant. Requires at least 2 strictly increasing
    /// knots.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        validate_knots(xs, ys, 2)?;
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            extrapolation: Extrapolation::Clamp,
        })
    }

    /// Sets the extrapolation policy (builder style). For a piecewise-linear
    /// interpolant [`Extrapolation::Extend`] and [`Extrapolation::Linear`]
    /// coincide.
    #[must_use]
    pub fn with_extrapolation(mut self, e: Extrapolation) -> Self {
        self.extrapolation = e;
        self
    }

    /// The knot abscissae.
    pub fn knots_x(&self) -> &[f64] {
        &self.xs
    }

    /// The knot ordinates.
    pub fn knots_y(&self) -> &[f64] {
        &self.ys
    }
}

impl Interpolant for LinearInterp {
    fn eval(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if self.extrapolation == Extrapolation::Clamp {
            if x <= lo {
                return *self.ys.first().expect("non-empty by construction");
            }
            if x >= hi {
                return *self.ys.last().expect("non-empty by construction");
            }
        }
        let i = segment_index(&self.xs, x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    fn deriv(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if self.extrapolation == Extrapolation::Clamp && (x < lo || x > hi) {
            return 0.0;
        }
        let i = segment_index(&self.xs, x);
        (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])
    }

    fn domain(&self) -> (f64, f64) {
        (
            *self.xs.first().expect("non-empty by construction"),
            *self.xs.last().expect("non-empty by construction"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_knots() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [2.0, 4.0, -2.0];
        let li = LinearInterp::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((li.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn midpoints_are_averages() {
        let li = LinearInterp::new(&[0.0, 2.0], &[10.0, 20.0]).unwrap();
        assert!((li.eval(1.0) - 15.0).abs() < 1e-12);
        assert!((li.deriv(1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_extrapolation_pegs_boundaries() {
        let li = LinearInterp::new(&[1.0, 2.0], &[5.0, 7.0]).unwrap();
        assert_eq!(li.eval(0.0), 5.0);
        assert_eq!(li.eval(9.0), 7.0);
        assert_eq!(li.deriv(0.0), 0.0);
        assert_eq!(li.deriv(9.0), 0.0);
    }

    #[test]
    fn linear_extrapolation_continues_slope() {
        let li = LinearInterp::new(&[1.0, 2.0], &[5.0, 7.0])
            .unwrap()
            .with_extrapolation(Extrapolation::Linear);
        assert!((li.eval(0.0) - 3.0).abs() < 1e-12);
        assert!((li.eval(3.0) - 9.0).abs() < 1e-12);
        assert!((li.deriv(0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_single_point() {
        assert!(LinearInterp::new(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn eval_many_matches_eval() {
        let li = LinearInterp::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 4.0]).unwrap();
        let xs = [0.25, 0.75, 1.5];
        let ys = li.eval_many(&xs);
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert_eq!(li.eval(*x), *y);
        }
    }
}
