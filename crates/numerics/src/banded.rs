//! Banded linear solvers.
//!
//! Cubic-spline construction reduces to a tridiagonal system in the spline
//! moments (second derivatives at the knots), solved here with the Thomas
//! algorithm. The smoothing spline of paper eq. 12 additionally needs a
//! symmetric positive-definite *pentadiagonal* solve (Green & Silverman's
//! `(W + λ Δ Δᵀ) γ = Δ y` system), provided by [`solve_spd_pentadiagonal`].

use crate::NumericsError;

/// Solves a tridiagonal system `A x = d` with the Thomas algorithm.
///
/// * `sub` — sub-diagonal, length `n - 1` (`sub[i]` multiplies `x[i]` in row `i + 1`);
/// * `diag` — main diagonal, length `n`;
/// * `sup` — super-diagonal, length `n - 1` (`sup[i]` multiplies `x[i + 1]` in row `i`);
/// * `rhs` — right-hand side, length `n`.
///
/// Runs in `O(n)` time and `O(n)` scratch. Returns
/// [`NumericsError::SingularSystem`] when a pivot underflows; the Thomas
/// algorithm is unpivoted, so this is only reliable for diagonally dominant
/// or SPD systems — which all of our spline systems are.
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, NumericsError> {
    let n = diag.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if sub.len() != n - 1 || sup.len() != n - 1 || rhs.len() != n {
        return Err(NumericsError::InvalidParameter {
            what: "tridiagonal band lengths must be n-1, n, n-1, n",
        });
    }

    let mut c_prime = vec![0.0; n];
    let mut d_prime = vec![0.0; n];

    if diag[0].abs() < f64::MIN_POSITIVE {
        return Err(NumericsError::SingularSystem);
    }
    c_prime[0] = if n > 1 { sup[0] / diag[0] } else { 0.0 };
    d_prime[0] = rhs[0] / diag[0];

    for i in 1..n {
        let denom = diag[i] - sub[i - 1] * c_prime[i - 1];
        if denom.abs() < f64::MIN_POSITIVE || !denom.is_finite() {
            return Err(NumericsError::SingularSystem);
        }
        c_prime[i] = if i < n - 1 { sup[i] / denom } else { 0.0 };
        d_prime[i] = (rhs[i] - sub[i - 1] * d_prime[i - 1]) / denom;
    }

    let mut x = d_prime;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_prime[i] * next;
    }
    Ok(x)
}

/// Solves a symmetric positive-definite pentadiagonal system `A x = b` via an
/// in-place banded LDLᵀ factorization (bandwidth 2).
///
/// The matrix is given by three bands:
/// * `d0` — main diagonal, length `n`;
/// * `d1` — first off-diagonal, length `n - 1` (`A[i][i+1] = A[i+1][i] = d1[i]`);
/// * `d2` — second off-diagonal, length `n - 2` (`A[i][i+2] = A[i+2][i] = d2[i]`).
///
/// Used by the smoothing spline, where `A = W + λ Δ Δᵀ` is SPD for every
/// `λ ≥ 0`. `O(n)` time.
pub fn solve_spd_pentadiagonal(
    d0: &[f64],
    d1: &[f64],
    d2: &[f64],
    b: &[f64],
) -> Result<Vec<f64>, NumericsError> {
    let n = d0.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let ok_lens =
        b.len() == n && d1.len() == n.saturating_sub(1) && d2.len() == n.saturating_sub(2);
    if !ok_lens {
        return Err(NumericsError::InvalidParameter {
            what: "pentadiagonal band lengths must be n, n-1, n-2 and rhs n",
        });
    }

    // LDL^T with L unit lower triangular, bandwidth 2:
    //   D[i]      pivot
    //   l1[i]     L[i+1][i]
    //   l2[i]     L[i+2][i]
    let mut dpiv = vec![0.0; n];
    let mut l1 = vec![0.0; n.saturating_sub(1)];
    let mut l2 = vec![0.0; n.saturating_sub(2)];

    for i in 0..n {
        let mut di = d0[i];
        if i >= 1 {
            di -= l1[i - 1] * l1[i - 1] * dpiv[i - 1];
        }
        if i >= 2 {
            di -= l2[i - 2] * l2[i - 2] * dpiv[i - 2];
        }
        if di <= 0.0 || !di.is_finite() {
            return Err(NumericsError::SingularSystem);
        }
        dpiv[i] = di;

        if i + 1 < n {
            let mut e = d1[i];
            if i >= 1 {
                e -= l1[i - 1] * dpiv[i - 1] * l2[i - 1];
            }
            l1[i] = e / di;
        }
        if i + 2 < n {
            l2[i] = d2[i] / di;
        }
    }

    // Forward solve L z = b.
    let mut z = b.to_vec();
    for i in 0..n {
        if i >= 1 {
            z[i] -= l1[i - 1] * z[i - 1];
        }
        if i >= 2 {
            z[i] -= l2[i - 2] * z[i - 2];
        }
    }
    // Diagonal solve D w = z.
    for i in 0..n {
        z[i] /= dpiv[i];
    }
    // Backward solve L^T x = w.
    for i in (0..n).rev() {
        if i + 1 < n {
            let t = l1[i] * z[i + 1];
            z[i] -= t;
        }
        if i + 2 < n {
            let t = l2[i] * z[i + 2];
            z[i] -= t;
        }
    }
    Ok(z)
}

/// Multiplies a symmetric pentadiagonal matrix (bands as in
/// [`solve_spd_pentadiagonal`]) by a vector. Primarily a test helper, but
/// exposed because residual checks are useful for calibration code too.
pub fn spd_pentadiagonal_matvec(d0: &[f64], d1: &[f64], d2: &[f64], x: &[f64]) -> Vec<f64> {
    let n = d0.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = d0[i] * x[i];
        if i >= 1 {
            acc += d1[i - 1] * x[i - 1];
        }
        if i + 1 < n {
            acc += d1[i] * x[i + 1];
        }
        if i >= 2 {
            acc += d2[i - 2] * x[i - 2];
        }
        if i + 2 < n {
            acc += d2[i] * x[i + 2];
        }
        y[i] = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn tridiagonal_identity() {
        let x = solve_tridiagonal(&[0.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 0.0], &[3.0, 4.0, 5.0])
            .unwrap();
        assert_eq!(x, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn tridiagonal_single_element() {
        let x = solve_tridiagonal(&[], &[2.0], &[], &[10.0]).unwrap();
        assert_eq!(x, vec![5.0]);
    }

    #[test]
    fn tridiagonal_empty() {
        assert!(solve_tridiagonal(&[], &[], &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn tridiagonal_known_system() {
        // [ 2 1 0 ] [x0]   [ 4 ]
        // [ 1 3 1 ] [x1] = [ 9 ]
        // [ 0 1 2 ] [x2]   [ 7 ]
        // Solution: x = [1.125, 1.75, 2.625]
        let x = solve_tridiagonal(&[1.0, 1.0], &[2.0, 3.0, 2.0], &[1.0, 1.0], &[4.0, 9.0, 7.0])
            .unwrap();
        assert_close(x[0], 1.125, 1e-12);
        assert_close(x[1], 1.75, 1e-12);
        assert_close(x[2], 2.625, 1e-12);
    }

    #[test]
    fn tridiagonal_rejects_bad_lengths() {
        assert!(
            solve_tridiagonal(&[1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0, 1.0]).is_err()
        );
    }

    #[test]
    fn tridiagonal_detects_singular() {
        // Row 2 becomes exactly dependent after elimination.
        let r = solve_tridiagonal(&[1.0], &[1.0, 1.0], &[1.0], &[1.0, 1.0]);
        assert_eq!(r, Err(NumericsError::SingularSystem));
    }

    #[test]
    fn pentadiagonal_identity() {
        let x = solve_spd_pentadiagonal(
            &[1.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pentadiagonal_matches_matvec_roundtrip() {
        // SPD by diagonal dominance.
        let d0 = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let d1 = [1.0, -2.0, 0.5, 1.5, -1.0];
        let d2 = [0.3, 0.7, -0.2, 0.9];
        let x_true = [1.0, -1.0, 2.0, 0.5, -0.25, 3.0];
        let b = spd_pentadiagonal_matvec(&d0, &d1, &d2, &x_true);
        let x = solve_spd_pentadiagonal(&d0, &d1, &d2, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert_close(*xi, *ti, 1e-10);
        }
    }

    #[test]
    fn pentadiagonal_small_sizes() {
        // n = 1
        let x = solve_spd_pentadiagonal(&[4.0], &[], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
        // n = 2
        let x = solve_spd_pentadiagonal(&[4.0, 4.0], &[1.0], &[], &[5.0, 5.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 1.0, 1e-12);
    }

    #[test]
    fn pentadiagonal_rejects_indefinite() {
        // Not positive definite: pivot goes negative.
        let r = solve_spd_pentadiagonal(&[1.0, -5.0], &[2.0], &[], &[1.0, 1.0]);
        assert_eq!(r, Err(NumericsError::SingularSystem));
    }

    #[test]
    fn pentadiagonal_rejects_bad_lengths() {
        assert!(solve_spd_pentadiagonal(&[1.0, 1.0], &[], &[], &[1.0, 1.0]).is_err());
    }
}
