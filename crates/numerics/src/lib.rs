//! # mvasd-numerics
//!
//! Numerical substrate for the MVASD performance-modeling suite.
//!
//! The paper ("Performance Modeling of Multi-tiered Web Applications with
//! Varying Service Demands", Kattepur & Nambiar) relies on Scilab's `interp()`
//! for cubic-spline interpolation of measured service demands (its eq. 12–14),
//! on Chebyshev Nodes for load-test sample placement (eq. 16–19), and on mean
//! percentage deviation for accuracy reporting (eq. 15). This crate provides
//! those building blocks from scratch, plus the supporting linear algebra
//! (tridiagonal / pentadiagonal banded solvers), classic polynomial
//! interpolation (to demonstrate the Runge phenomenon the paper cites), and
//! Erlang B/C closed forms used to validate the queueing solvers elsewhere in
//! the workspace.
//!
//! ## Module map
//!
//! * [`banded`] — Thomas tridiagonal solver and a symmetric pentadiagonal
//!   LDLᵀ solver (used by the smoothing spline).
//! * [`dd`] — double-double (~106-bit) arithmetic; stabilizes the exact
//!   multi-server MVA recursions against their knee-region round-off
//!   amplification.
//! * [`interp`] — the [`interp::Interpolant`] trait and implementations:
//!   linear, natural/clamped/not-a-knot cubic splines with derivatives,
//!   monotone cubic (PCHIP), smoothing spline (paper eq. 12), and Newton-form
//!   polynomial interpolation.
//! * [`chebyshev`] — Chebyshev nodes on `(-1,1)` and `[a,b]` (paper
//!   eq. 16–17), Chebyshev polynomials, and the interpolation error bound
//!   (paper eq. 18–19).
//! * [`optimize`] — Nelder–Mead simplex minimization (used by the
//!   curve-fitting extrapolation baseline).
//! * [`stats`] — descriptive statistics and the mean percentage deviation
//!   metric of paper eq. 15.
//! * [`erlang`] — Erlang B/C formulas and M/M/c performance metrics.
//! * [`rng`] — deterministic xoshiro256++ pseudo-random generation with
//!   SplitMix64 seeding; uniform / exponential / Box–Muller normal
//!   variates. The whole workspace draws from here (zero-dependency
//!   policy: no `rand`).
//! * [`propcheck`] — a small deterministic property-test harness (seeded
//!   case generation, tape-based bounded shrinking) replacing `proptest`.
//! * [`pool`] — scoped-thread indexed fan-out ([`pool::scoped_indexed`])
//!   with a `min_chunk` worker-count heuristic; the shared parallel
//!   substrate for scenario sweeps, testbed campaigns, and hierarchical
//!   subsystem solves (zero-dependency policy: no `rayon`/`crossbeam`).
//!
//! ## Quick example
//!
//! ```
//! use mvasd_numerics::interp::{CubicSpline, BoundaryCondition, Extrapolation, Interpolant};
//!
//! // Measured service demands (seconds) at a few concurrency levels.
//! let n = [1.0, 14.0, 28.0, 70.0, 140.0];
//! let d = [0.0150, 0.0139, 0.0131, 0.0122, 0.0118];
//! let spline = CubicSpline::new(&n, &d, BoundaryCondition::NotAKnot)
//!     .unwrap()
//!     .with_extrapolation(Extrapolation::Clamp);
//! let d_at_100 = spline.eval(100.0);
//! assert!(d_at_100 > 0.0118 && d_at_100 < 0.0131);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod chebyshev;
pub mod dd;
pub mod erlang;
pub mod interp;
pub mod optimize;
pub mod pool;
pub mod propcheck;
pub mod rng;
pub mod stats;

/// Errors produced while constructing numerical objects.
///
/// Evaluation paths are kept panic- and error-free; all validation happens at
/// construction time so hot loops (MVA iterations, DES event handlers) can
/// call `eval` without branching on `Result`s.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// Fewer data points than the method requires.
    TooFewPoints {
        /// Points required by the method.
        needed: usize,
        /// Points actually supplied.
        got: usize,
    },
    /// `xs` and `ys` differ in length.
    LengthMismatch {
        /// Length of the abscissa slice.
        xs: usize,
        /// Length of the ordinate slice.
        ys: usize,
    },
    /// Abscissae are not strictly increasing.
    NotStrictlyIncreasing {
        /// Index of the offending element (`xs[index] >= xs[index + 1]` fails).
        index: usize,
    },
    /// A value that must be finite was NaN or infinite.
    NonFinite {
        /// Human-readable description of which input was non-finite.
        what: &'static str,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// A linear system was singular (or numerically so).
    SingularSystem,
}

impl core::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NumericsError::TooFewPoints { needed, got } => {
                write!(f, "too few points: need at least {needed}, got {got}")
            }
            NumericsError::LengthMismatch { xs, ys } => {
                write!(f, "length mismatch: xs has {xs} elements, ys has {ys}")
            }
            NumericsError::NotStrictlyIncreasing { index } => {
                write!(f, "abscissae not strictly increasing at index {index}")
            }
            NumericsError::NonFinite { what } => write!(f, "non-finite input: {what}"),
            NumericsError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            NumericsError::SingularSystem => write!(f, "singular linear system"),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Validates a knot set: equal lengths, at least `min_points`, strictly
/// increasing finite abscissae, finite ordinates.
pub(crate) fn validate_knots(
    xs: &[f64],
    ys: &[f64],
    min_points: usize,
) -> Result<(), NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < min_points {
        return Err(NumericsError::TooFewPoints {
            needed: min_points,
            got: xs.len(),
        });
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(NumericsError::NonFinite { what: "abscissa" });
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(NumericsError::NonFinite { what: "ordinate" });
    }
    for i in 0..xs.len() - 1 {
        if xs[i] >= xs[i + 1] {
            return Err(NumericsError::NotStrictlyIncreasing { index: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_knots() {
        assert!(validate_knots(&[0.0, 1.0, 2.0], &[5.0, 4.0, 3.0], 3).is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_lengths() {
        assert_eq!(
            validate_knots(&[0.0, 1.0], &[1.0], 2),
            Err(NumericsError::LengthMismatch { xs: 2, ys: 1 })
        );
    }

    #[test]
    fn validate_rejects_too_few() {
        assert_eq!(
            validate_knots(&[0.0], &[1.0], 2),
            Err(NumericsError::TooFewPoints { needed: 2, got: 1 })
        );
    }

    #[test]
    fn validate_rejects_unsorted() {
        assert_eq!(
            validate_knots(&[0.0, 2.0, 1.0], &[1.0, 2.0, 3.0], 2),
            Err(NumericsError::NotStrictlyIncreasing { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_duplicates() {
        assert_eq!(
            validate_knots(&[0.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 2),
            Err(NumericsError::NotStrictlyIncreasing { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        assert_eq!(
            validate_knots(&[0.0, f64::NAN], &[1.0, 2.0], 2),
            Err(NumericsError::NonFinite { what: "abscissa" })
        );
        assert_eq!(
            validate_knots(&[0.0, 1.0], &[1.0, f64::INFINITY], 2),
            Err(NumericsError::NonFinite { what: "ordinate" })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            NumericsError::TooFewPoints { needed: 4, got: 2 }.to_string(),
            NumericsError::LengthMismatch { xs: 3, ys: 2 }.to_string(),
            NumericsError::NotStrictlyIncreasing { index: 0 }.to_string(),
            NumericsError::NonFinite { what: "lambda" }.to_string(),
            NumericsError::InvalidParameter { what: "n >= 1" }.to_string(),
            NumericsError::SingularSystem.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
