//! Deterministic pseudo-random number generation (std-only).
//!
//! The workspace policy is zero external dependencies, so the simulator,
//! the test designer, and the property-test harness all draw from this
//! module instead of the `rand` crate. The core generator is
//! **xoshiro256++** (Blackman & Vigna), seeded through **SplitMix64** so a
//! single `u64` seed expands into a well-mixed 256-bit state — the same
//! construction the reference implementations recommend. On top of the raw
//! stream sit the variate families the suite needs: uniform reals,
//! inverse-CDF exponentials, and Box–Muller normals.
//!
//! Determinism is a feature, not an accident: every simulation, campaign,
//! and property-test case in the workspace is reproducible from its seed,
//! and the generator has no global or thread-local state.

/// One step of the SplitMix64 sequence; returns the next state and output.
///
/// Used for seed expansion and for deriving independent per-case / per-level
/// seeds from a base seed without correlation between consecutive values.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator with SplitMix64 seeding.
///
/// 256 bits of state, period `2^256 − 1`, passes BigCrush. Not
/// cryptographically secure — this is a simulation/testing generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds a generator from a single `u64` seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53 — the standard uniform-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1)` — never exactly zero, safe under `ln()`.
    #[inline]
    pub fn open01(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)` (`lo` if the interval is empty).
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Uniform `f64` on the **closed** interval `[lo, hi]`.
    #[inline]
    pub fn uniform_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + (hi - lo) * (self.next_u64() as f64 / u64::MAX as f64)
        }
    }

    /// Uniform `u64` in `[0, n)` (Lemire-style rejection-free for our
    /// purposes: a simple modulo is fine given `n ≪ 2^64`, but we debias
    /// anyway by rejecting the short final stripe).
    #[inline]
    pub fn next_u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_u64_below requires n > 0");
        if n == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` on the closed range `[lo, hi]`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64 + 1;
        lo + self.next_u64_below(span) as usize
    }

    /// Exponential variate with the given mean (inverse CDF).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // lint: float-eq-ok zero mean is an exact degenerate-input sentinel, not a computed value
        if mean == 0.0 {
            0.0
        } else {
            -mean * self.open01().ln()
        }
    }

    /// Normal variate via Box–Muller (one of the pair; the twin is dropped
    /// to keep the draw count per call fixed, which matters for replayable
    /// streams).
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.open01();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: seeding xoshiro256++ with state {1, 2, 3, 4} must give
        // the published sequence. We bypass SplitMix64 by constructing the
        // state via a generator whose internals we set through the public
        // surface — instead, check the first outputs of the documented
        // construction are stable (regression pin, not external vector).
        let mut r = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xoshiro256pp::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // SplitMix64 reference: first output for state 0 is 0xE220A8397B1DCDAF.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn splitmix_known_values() {
        // Published SplitMix64 test vector (seed 1234567).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_converges() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let m = (0..n).map(|_| r.uniform(2.0, 4.0)).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.01, "got {m}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Xoshiro256pp::seed_from_u64(13);
        let n = 200_000;
        let m = (0..n).map(|_| r.exponential(0.25)).sum::<f64>() / n as f64;
        assert!((m - 0.25).abs() < 0.005, "got {m}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = Xoshiro256pp::seed_from_u64(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(1.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn usize_in_bounds_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(19);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.usize_in(3, 7);
            assert!((3..=7).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        assert_eq!(r.usize_in(4, 4), 4);
    }

    #[test]
    fn uniform_inclusive_degenerate_and_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(23);
        assert_eq!(r.uniform_inclusive(2.5, 2.5), 2.5);
        for _ in 0..1000 {
            let v = r.uniform_inclusive(-1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_mean_exponential_is_zero() {
        let mut r = Xoshiro256pp::seed_from_u64(29);
        assert_eq!(r.exponential(0.0), 0.0);
    }
}
