//! Scoped-thread work pool: indexed fan-out with deterministic reassembly.
//!
//! Every concurrent layer of the workspace — testbed load campaigns,
//! scenario-sweep model groups, and the hierarchy's parallel subsystem
//! solves — shares this one primitive: run `job(0..count)` on a scoped
//! thread pool and hand the results back **in index order**, so parallel
//! execution changes wall-clock time and nothing else. Results travel
//! through per-index slots, not a channel, which is what makes the
//! reassembly order independent of scheduling.
//!
//! Worker-count policy ([`effective_workers`]): besides the obvious caps
//! (`parallelism`, `count`), a `min_chunk` heuristic keeps tiny job lists
//! from fanning out — spawning `count` threads for `count` microsecond
//! jobs costs more than it saves. [`scoped_indexed`] uses `min_chunk = 1`
//! (every job is assumed heavyweight: a whole model solve); callers with
//! cheap jobs pick a larger chunk through [`scoped_indexed_min_chunk`].
//! `count = 1` or `parallelism <= 1` always degenerates to a serial loop
//! on the calling thread with zero spawn overhead.
//!
//! # Deterministic interleaving explorer
//!
//! "Results in index order" is a *static* promise; the callers that claim
//! bit-identity to serial execution (the hierarchy's plan/commit
//! sub-solves, lint rule L9) need a *dynamic* witness. [`with_schedule`]
//! forces every pool dispatch on the current thread to execute its jobs
//! serially in a chosen completion order — the exact set of observable
//! side-effect orderings a real scheduler could produce — while still
//! returning results in index order. [`explore_schedules`] drives a
//! closure through **every** permutation of a ≤ 4-task dispatch (at most
//! 24 schedules), so a test can assert that outputs and caches are
//! bitwise identical on all of them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// The forced completion order installed by [`with_schedule`], if any.
    static SCHEDULE: RefCell<Option<Vec<usize>>> = const { RefCell::new(None) };
}

/// Number of worker threads a fan-out of `count` jobs will actually use:
/// `parallelism`, capped by the job count and by the `min_chunk` heuristic
/// (each worker should have at least `min_chunk` jobs' worth of work, so
/// `count` jobs justify at most `count / min_chunk` threads). Never zero;
/// a result of 1 means the serial path.
pub fn effective_workers(count: usize, parallelism: usize, min_chunk: usize) -> usize {
    let by_chunk = count / min_chunk.max(1);
    parallelism.min(count).min(by_chunk).max(1)
}

/// Runs `job(0..count)` on a scoped thread pool and returns the results in
/// index order. `parallelism <= 1` (or a single item) degenerates to a
/// serial loop with no thread overhead. Panics inside `job` propagate when
/// the scope joins, exactly like a serial panic would.
///
/// Jobs are assumed heavyweight (model solves, load campaigns): the pool
/// fans out whenever `parallelism > 1` and `count > 1`. For cheap jobs use
/// [`scoped_indexed_min_chunk`] so short lists stay serial.
pub fn scoped_indexed<T, F>(count: usize, parallelism: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scoped_indexed_min_chunk(count, parallelism, 1, job)
}

/// [`scoped_indexed`] with an explicit `min_chunk`: at least `min_chunk`
/// jobs per worker thread, so a list of a few cheap jobs runs serially
/// instead of paying `count` thread spawns (see [`effective_workers`]).
pub fn scoped_indexed_min_chunk<T, F>(
    count: usize,
    parallelism: usize,
    min_chunk: usize,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if let Some(order) = SCHEDULE.with(|s| s.borrow().clone()) {
        return run_scheduled(count, &order, job);
    }
    let workers = effective_workers(count, parallelism, min_chunk);
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // lint: interference-ok atomic claim hands each index to exactly one task
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = job(i);
                // lint: interference-ok per-index slot, only the claiming task touches it
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(out),
                    Err(poisoned) => *poisoned.into_inner() = Some(out),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Executes a dispatch under a forced completion order: jobs run serially
/// in `order` (indices `>= count` and duplicates skipped; indices the
/// order omits are appended ascending), results still return in index
/// order. Side-effect ordering is the *only* thing a schedule varies —
/// exactly the degree of freedom a real scheduler has.
fn run_scheduled<T>(count: usize, order: &[usize], job: impl Fn(usize) -> T) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for &i in order {
        if i < count && slots[i].is_none() {
            slots[i] = Some(job(i));
        }
    }
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(job(i));
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was executed by the schedule"))
        .collect()
}

/// Clears the forced schedule when the [`with_schedule`] scope unwinds,
/// even on panic, so a failing exploration cannot leak determinism into
/// later tests on the same thread.
struct ScheduleReset;

impl Drop for ScheduleReset {
    fn drop(&mut self) {
        SCHEDULE.with(|s| *s.borrow_mut() = None);
    }
}

/// Runs `f` with a forced task schedule: for the duration of the call,
/// every pool dispatch on this thread executes serially in the given
/// completion order (see [`run_scheduled`] for how the order is adapted
/// to each dispatch's `count`). Returns `f`'s result; the schedule is
/// cleared on exit, panic included.
pub fn with_schedule<R>(order: &[usize], f: impl FnOnce() -> R) -> R {
    SCHEDULE.with(|s| *s.borrow_mut() = Some(order.to_vec()));
    let _reset = ScheduleReset;
    f()
}

/// All `count!` completion orders of a `count`-task dispatch, in a
/// deterministic order. `count = 0` yields the single empty schedule.
pub fn permutations(count: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut prefix = Vec::with_capacity(count);
    let mut rest: Vec<usize> = (0..count).collect();
    permute_into(&mut prefix, &mut rest, &mut out);
    out
}

fn permute_into(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if rest.is_empty() {
        out.push(prefix.clone());
        return;
    }
    for k in 0..rest.len() {
        let v = rest.remove(k);
        prefix.push(v);
        permute_into(prefix, rest, out);
        prefix.pop();
        rest.insert(k, v);
    }
}

/// Exhaustively runs `run` under every completion-order schedule of a
/// `count`-task dispatch, returning each schedule paired with its result.
/// The caller asserts whatever identity it promises across the results —
/// for the plan/commit layers, bitwise equality of solutions and cache
/// contents. Capped at `count <= 4` (24 schedules) so exploration stays
/// exhaustive rather than sampled.
pub fn explore_schedules<R>(
    count: usize,
    mut run: impl FnMut(&[usize]) -> R,
) -> Vec<(Vec<usize>, R)> {
    assert!(
        count <= 4,
        "exhaustive schedule exploration is capped at 4 tasks (24 schedules)"
    );
    permutations(count)
        .into_iter()
        .map(|p| {
            let r = with_schedule(&p, || run(&p));
            (p, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for parallelism in [0, 1, 2, 4, 16] {
            let out = scoped_indexed(10, parallelism, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    /// The documented edge behaviors: `count = 1` and `parallelism = 0`
    /// both run serially on the calling thread (no spawn at all).
    #[test]
    fn tiny_lists_and_zero_parallelism_stay_serial() {
        let caller = std::thread::current().id();
        let out = scoped_indexed(1, 64, |i| (i, std::thread::current().id()));
        assert_eq!(out, vec![(0, caller)]);
        let out = scoped_indexed(5, 0, |i| (i, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        let out: Vec<usize> = scoped_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn min_chunk_limits_worker_count() {
        // 3 jobs, 8 threads requested, but each worker must own >= 4 jobs:
        // serial.
        assert_eq!(effective_workers(3, 8, 4), 1);
        // 8 jobs / chunk 4 -> at most 2 workers.
        assert_eq!(effective_workers(8, 8, 4), 2);
        // Heavy jobs (chunk 1): capped only by count and parallelism.
        assert_eq!(effective_workers(3, 8, 1), 3);
        assert_eq!(effective_workers(100, 4, 1), 4);
        // Degenerate requests still come back >= 1.
        assert_eq!(effective_workers(0, 8, 4), 1);
        assert_eq!(effective_workers(5, 0, 0), 1);
    }

    #[test]
    fn min_chunk_variant_runs_serial_under_threshold() {
        let caller = std::thread::current().id();
        let out = scoped_indexed_min_chunk(3, 8, 4, |i| (i, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
        let out = scoped_indexed_min_chunk(64, 4, 4, |i| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = scoped_indexed(100, 8, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let distinct: HashSet<usize> = out.into_iter().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn permutations_enumerate_every_schedule_once() {
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(1), vec![vec![0]]);
        for (n, fact) in [(2, 2), (3, 6), (4, 24)] {
            let perms = permutations(n);
            assert_eq!(perms.len(), fact);
            let distinct: HashSet<Vec<usize>> = perms.iter().cloned().collect();
            assert_eq!(distinct.len(), fact, "duplicate schedule for n={n}");
            for p in &perms {
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn schedules_permute_side_effects_but_never_results() {
        for perm in permutations(3) {
            let log = Mutex::new(Vec::new());
            let out = with_schedule(&perm, || {
                scoped_indexed(3, 2, |i| {
                    log.lock().expect("no poisoning in this test").push(i);
                    i * 10
                })
            });
            assert_eq!(out, vec![0, 10, 20], "results must stay index-ordered");
            assert_eq!(
                *log.lock().expect("no poisoning in this test"),
                perm,
                "side effects must follow the forced schedule"
            );
        }
    }

    #[test]
    fn schedules_adapt_to_mismatched_dispatch_counts() {
        // Out-of-range indices are skipped, missing ones appended
        // ascending, so nested dispatches of different sizes both stay
        // deterministic under one schedule.
        let log = Mutex::new(Vec::new());
        let out = with_schedule(&[2, 9, 0], || {
            scoped_indexed(4, 4, |i| {
                log.lock().expect("no poisoning in this test").push(i);
                i
            })
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(
            *log.lock().expect("no poisoning in this test"),
            vec![2, 0, 1, 3]
        );
    }

    #[test]
    fn schedule_scope_resets_even_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_schedule(&[1, 0], || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(SCHEDULE.with(|s| s.borrow().is_none()));
        // And a clean exit resets too.
        with_schedule(&[0], || ());
        assert!(SCHEDULE.with(|s| s.borrow().is_none()));
    }

    #[test]
    fn explore_schedules_is_exhaustive_and_capped() {
        let runs = explore_schedules(4, |sched| sched.to_vec());
        assert_eq!(runs.len(), 24);
        let distinct: HashSet<Vec<usize>> = runs.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(distinct.len(), 24);
        for (sched, echoed) in &runs {
            assert_eq!(sched, echoed);
        }
        assert_eq!(explore_schedules(0, |_| ()).len(), 1);
        assert!(std::panic::catch_unwind(|| explore_schedules(5, |_| ())).is_err());
    }
}
