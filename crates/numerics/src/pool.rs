//! Scoped-thread work pool: indexed fan-out with deterministic reassembly.
//!
//! Every concurrent layer of the workspace — testbed load campaigns,
//! scenario-sweep model groups, and the hierarchy's parallel subsystem
//! solves — shares this one primitive: run `job(0..count)` on a scoped
//! thread pool and hand the results back **in index order**, so parallel
//! execution changes wall-clock time and nothing else. Results travel
//! through per-index slots, not a channel, which is what makes the
//! reassembly order independent of scheduling.
//!
//! Worker-count policy ([`effective_workers`]): besides the obvious caps
//! (`parallelism`, `count`), a `min_chunk` heuristic keeps tiny job lists
//! from fanning out — spawning `count` threads for `count` microsecond
//! jobs costs more than it saves. [`scoped_indexed`] uses `min_chunk = 1`
//! (every job is assumed heavyweight: a whole model solve); callers with
//! cheap jobs pick a larger chunk through [`scoped_indexed_min_chunk`].
//! `count = 1` or `parallelism <= 1` always degenerates to a serial loop
//! on the calling thread with zero spawn overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a fan-out of `count` jobs will actually use:
/// `parallelism`, capped by the job count and by the `min_chunk` heuristic
/// (each worker should have at least `min_chunk` jobs' worth of work, so
/// `count` jobs justify at most `count / min_chunk` threads). Never zero;
/// a result of 1 means the serial path.
pub fn effective_workers(count: usize, parallelism: usize, min_chunk: usize) -> usize {
    let by_chunk = count / min_chunk.max(1);
    parallelism.min(count).min(by_chunk).max(1)
}

/// Runs `job(0..count)` on a scoped thread pool and returns the results in
/// index order. `parallelism <= 1` (or a single item) degenerates to a
/// serial loop with no thread overhead. Panics inside `job` propagate when
/// the scope joins, exactly like a serial panic would.
///
/// Jobs are assumed heavyweight (model solves, load campaigns): the pool
/// fans out whenever `parallelism > 1` and `count > 1`. For cheap jobs use
/// [`scoped_indexed_min_chunk`] so short lists stay serial.
pub fn scoped_indexed<T, F>(count: usize, parallelism: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scoped_indexed_min_chunk(count, parallelism, 1, job)
}

/// [`scoped_indexed`] with an explicit `min_chunk`: at least `min_chunk`
/// jobs per worker thread, so a list of a few cheap jobs runs serially
/// instead of paying `count` thread spawns (see [`effective_workers`]).
pub fn scoped_indexed_min_chunk<T, F>(
    count: usize,
    parallelism: usize,
    min_chunk: usize,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_workers(count, parallelism, min_chunk);
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = job(i);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(out),
                    Err(poisoned) => *poisoned.into_inner() = Some(out),
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for parallelism in [0, 1, 2, 4, 16] {
            let out = scoped_indexed(10, parallelism, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    /// The documented edge behaviors: `count = 1` and `parallelism = 0`
    /// both run serially on the calling thread (no spawn at all).
    #[test]
    fn tiny_lists_and_zero_parallelism_stay_serial() {
        let caller = std::thread::current().id();
        let out = scoped_indexed(1, 64, |i| (i, std::thread::current().id()));
        assert_eq!(out, vec![(0, caller)]);
        let out = scoped_indexed(5, 0, |i| (i, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        let out: Vec<usize> = scoped_indexed(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn min_chunk_limits_worker_count() {
        // 3 jobs, 8 threads requested, but each worker must own >= 4 jobs:
        // serial.
        assert_eq!(effective_workers(3, 8, 4), 1);
        // 8 jobs / chunk 4 -> at most 2 workers.
        assert_eq!(effective_workers(8, 8, 4), 2);
        // Heavy jobs (chunk 1): capped only by count and parallelism.
        assert_eq!(effective_workers(3, 8, 1), 3);
        assert_eq!(effective_workers(100, 4, 1), 4);
        // Degenerate requests still come back >= 1.
        assert_eq!(effective_workers(0, 8, 4), 1);
        assert_eq!(effective_workers(5, 0, 0), 1);
    }

    #[test]
    fn min_chunk_variant_runs_serial_under_threshold() {
        let caller = std::thread::current().id();
        let out = scoped_indexed_min_chunk(3, 8, 4, |i| (i, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
        let out = scoped_indexed_min_chunk(64, 4, 4, |i| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = scoped_indexed(100, 8, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let distinct: HashSet<usize> = out.into_iter().collect();
        assert_eq!(distinct.len(), 100);
    }
}
