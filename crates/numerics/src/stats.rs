//! Descriptive statistics and accuracy metrics.
//!
//! The headline accuracy numbers of the paper (Tables 4–5) use the mean
//! percentage deviation of eq. 15:
//!
//! ```text
//! %Deviation = (1/M) Σₘ |Predicted(m) − Measured(m)| / Measured(m) · 100
//! ```
//!
//! implemented here as [`mean_pct_deviation`]. The remaining helpers support
//! steady-state estimation in the simulator (batch means, confidence
//! intervals) and the regression limit of the smoothing spline.

use crate::NumericsError;

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (`n − 1` denominator); `None` for fewer than 2
/// samples.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation; `None` for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linearly interpolated percentile (`p` in `[0, 100]`); `None` for an empty
/// slice or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Mean percentage deviation of predictions from measurements — paper eq. 15.
///
/// Skips pairs whose measured value is zero (a zero denominator would make
/// the metric meaningless); returns an error if lengths differ or no usable
/// pair remains.
pub fn mean_pct_deviation(predicted: &[f64], measured: &[f64]) -> Result<f64, NumericsError> {
    if predicted.len() != measured.len() {
        return Err(NumericsError::LengthMismatch {
            xs: predicted.len(),
            ys: measured.len(),
        });
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for (p, m) in predicted.iter().zip(measured.iter()) {
        if !p.is_finite() || !m.is_finite() {
            return Err(NumericsError::NonFinite {
                what: "deviation input",
            });
        }
        // lint: float-eq-ok exactly-zero measurements must be skipped before dividing by them
        if *m == 0.0 {
            continue;
        }
        acc += ((p - m) / m).abs();
        count += 1;
    }
    if count == 0 {
        return Err(NumericsError::InvalidParameter {
            what: "no pair with non-zero measured value",
        });
    }
    Ok(acc / count as f64 * 100.0)
}

/// Maximum percentage deviation over all pairs (same conventions as
/// [`mean_pct_deviation`]).
pub fn max_pct_deviation(predicted: &[f64], measured: &[f64]) -> Result<f64, NumericsError> {
    if predicted.len() != measured.len() {
        return Err(NumericsError::LengthMismatch {
            xs: predicted.len(),
            ys: measured.len(),
        });
    }
    let mut max = f64::NEG_INFINITY;
    for (p, m) in predicted.iter().zip(measured.iter()) {
        // lint: float-eq-ok exactly-zero measurements must be skipped before dividing by them
        if *m == 0.0 {
            continue;
        }
        max = max.max(((p - m) / m).abs());
    }
    if max.is_finite() {
        Ok(max * 100.0)
    } else {
        Err(NumericsError::InvalidParameter {
            what: "no pair with non-zero measured value",
        })
    }
}

/// Result of an ordinary least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Ordinary least-squares regression `y ≈ intercept + slope · x`.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Result<Regression, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::TooFewPoints {
            needed: 2,
            got: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum();
    // lint: float-eq-ok only exactly-coincident xs make the system singular; tiny sxx stays finite
    if sxx == 0.0 {
        return Err(NumericsError::SingularSystem);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| {
            let f = intercept + slope * x;
            (y - f) * (y - f)
        })
        .sum();
    // lint: float-eq-ok a perfectly-constant y vector hits exactly zero; R^2 = 1 by convention
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(Regression {
        slope,
        intercept,
        r_squared,
    })
}

/// A batch-means estimate: point estimate plus a half-width at roughly 95 %
/// confidence (Student-t with a normal-approximation critical value of 1.96
/// for ≥ 30 batches, inflated for fewer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMeansEstimate {
    /// Grand mean across batches.
    pub mean: f64,
    /// Approximate 95 % confidence half-width.
    pub half_width: f64,
    /// Number of batches used.
    pub batches: usize,
}

/// Splits a steady-state sample stream into `num_batches` equal batches and
/// returns the batch-means estimate of the mean. Standard technique for
/// confidence intervals on correlated DES output.
pub fn batch_means(
    samples: &[f64],
    num_batches: usize,
) -> Result<BatchMeansEstimate, NumericsError> {
    if num_batches < 2 {
        return Err(NumericsError::InvalidParameter {
            what: "need at least 2 batches",
        });
    }
    if samples.len() < num_batches {
        return Err(NumericsError::TooFewPoints {
            needed: num_batches,
            got: samples.len(),
        });
    }
    let batch_size = samples.len() / num_batches;
    let used = batch_size * num_batches;
    let batch_avgs: Vec<f64> = samples[..used]
        .chunks_exact(batch_size)
        .map(|c| c.iter().sum::<f64>() / batch_size as f64)
        .collect();
    let m = mean(&batch_avgs).expect("num_batches >= 2");
    let s = std_dev(&batch_avgs).expect("num_batches >= 2");
    // Coarse t-quantiles for 95% two-sided.
    let t = match num_batches - 1 {
        1 => 12.71,
        2 => 4.30,
        3 => 3.18,
        4 => 2.78,
        5 => 2.57,
        6..=9 => 2.31,
        10..=19 => 2.13,
        20..=29 => 2.05,
        _ => 1.96,
    };
    Ok(BatchMeansEstimate {
        mean: m,
        half_width: t * s / (num_batches as f64).sqrt(),
        batches: num_batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(mean(&xs).unwrap(), 5.0, 1e-12));
        assert!(close(variance(&xs).unwrap(), 32.0 / 7.0, 1e-12));
        assert!(mean(&[]).is_none());
        assert!(variance(&[1.0]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!(close(percentile(&xs, 50.0).unwrap(), 2.5, 1e-12));
        assert!(percentile(&xs, 101.0).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn pct_deviation_matches_eq15() {
        // predicted 110 vs measured 100 => 10 %; 90 vs 100 => 10 %; mean 10 %.
        let d = mean_pct_deviation(&[110.0, 90.0], &[100.0, 100.0]).unwrap();
        assert!(close(d, 10.0, 1e-12));
    }

    #[test]
    fn pct_deviation_skips_zero_measured() {
        let d = mean_pct_deviation(&[1.0, 105.0], &[0.0, 100.0]).unwrap();
        assert!(close(d, 5.0, 1e-12));
        assert!(mean_pct_deviation(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn pct_deviation_perfect_prediction_is_zero() {
        let m = [5.0, 10.0, 20.0];
        assert!(close(mean_pct_deviation(&m, &m).unwrap(), 0.0, 1e-12));
        assert!(close(max_pct_deviation(&m, &m).unwrap(), 0.0, 1e-12));
    }

    #[test]
    fn max_deviation_finds_worst_pair() {
        let d = max_pct_deviation(&[101.0, 150.0], &[100.0, 100.0]).unwrap();
        assert!(close(d, 50.0, 1e-12));
    }

    #[test]
    fn pct_deviation_rejects_mismatch_and_nan() {
        assert!(mean_pct_deviation(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mean_pct_deviation(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn regression_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!(close(r.slope, 2.5, 1e-12));
        assert!(close(r.intercept, -1.0, 1e-12));
        assert!(close(r.r_squared, 1.0, 1e-12));
    }

    #[test]
    fn regression_rejects_degenerate() {
        assert!(linear_regression(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(linear_regression(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn batch_means_constant_stream_zero_width() {
        let xs = vec![3.0; 100];
        let e = batch_means(&xs, 10).unwrap();
        assert!(close(e.mean, 3.0, 1e-12));
        assert!(close(e.half_width, 0.0, 1e-12));
        assert_eq!(e.batches, 10);
    }

    #[test]
    fn batch_means_covers_true_mean() {
        // Deterministic "noise" with zero mean.
        let xs: Vec<f64> = (0..1000)
            .map(|i| 10.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let e = batch_means(&xs, 20).unwrap();
        assert!((e.mean - 10.0).abs() <= e.half_width + 1e-9);
    }

    #[test]
    fn batch_means_rejects_bad_args() {
        assert!(batch_means(&[1.0, 2.0], 1).is_err());
        assert!(batch_means(&[1.0], 2).is_err());
    }
}
