//! # mvasd-suite
//!
//! Umbrella crate for the MVASD performance-modeling suite — a from-scratch
//! Rust reproduction of Kattepur & Nambiar, *"Performance Modeling of
//! Multi-tiered Web Applications with Varying Service Demands"* (IPPS 2015 /
//! IJNC 6(1), 2016).
//!
//! Re-exports the workspace crates under friendly names so examples and
//! downstream users need a single dependency:
//!
//! * [`obsv`] — zero-dependency tracing + metrics (spans, counters,
//!   histograms, Chrome-trace/JSONL sinks) wired through every solver path.
//! * [`numerics`] — splines, Chebyshev nodes, statistics, Erlang formulas.
//! * [`queueing`] — operational laws, bounds, exact/approximate MVA.
//! * [`simnet`] — discrete-event closed queueing-network simulator.
//! * [`testbed`] — simulated load-testing lab (VINS & JPetStore models,
//!   Grinder-style driver, monitors, demand extraction).
//! * [`core`] — MVASD itself: multi-server MVA over spline-interpolated
//!   concurrency-varying service demands, plus the prediction workflow.
//!
//! ## End-to-end (the paper's Fig. 17 workflow on the simulated lab)
//!
//! ```no_run
//! use mvasd_suite::core::pipeline::PredictionWorkflow;
//! use mvasd_suite::testbed::apps::jpetstore;
//! use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};
//!
//! // Step 1 — design the load tests (Chebyshev Nodes over [1, 300]).
//! let workflow = PredictionWorkflow::default();
//! let levels = workflow.design()?;
//!
//! // Step 2 — run them (here: simulated JPetStore; in your lab: real tests).
//! let app = jpetstore::model();
//! let campaign = run_campaign(&app, &levels, &CampaignConfig::default())?;
//!
//! // Step 3 — interpolate demands + MVASD.
//! let prediction = workflow.predict(&campaign.to_demand_samples(), 300)?;
//! println!("X(250) = {:.1} pages/s", prediction.at(250).unwrap().throughput);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use mvasd_core as core;
pub use mvasd_numerics as numerics;
pub use mvasd_obsv as obsv;
pub use mvasd_queueing as queueing;
pub use mvasd_simnet as simnet;
pub use mvasd_testbed as testbed;
