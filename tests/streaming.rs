//! Cross-backend streaming guarantees: every solver in the workspace —
//! the five static MVA solvers, the three MVASD variants, and the
//! discrete-event estimator — exposes a resumable population iterator
//! whose stream is bit-for-bit the batch solution, survives
//! snapshot/restore mid-sweep, and treats `n_max = 0` as an empty (but
//! validated) sweep. Also proves the early-exit and warm-restart savings
//! the streaming core exists for.

use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};
use mvasd_suite::core::solver::{MvasdSchweitzerSolver, MvasdSingleServerSolver, MvasdSolver};
use mvasd_suite::core::sweep::{Scenario, ScenarioSweep};
use mvasd_suite::numerics::propcheck::{check, Config, Gen};
use mvasd_suite::queueing::mva::{
    run_until, ClosedSolver, ConvolutionSolver, ExactMvaSolver, LoadDependentSolver,
    MultiserverMvaSolver, SchweitzerSolver, StopCondition, StopReason,
};
use mvasd_suite::queueing::network::{ClosedNetwork, Station};
use mvasd_suite::simnet::{Distribution, SimConfig, SimNetwork, SimStation};
use mvasd_suite::testbed::solver::SimSolver;

fn network() -> ClosedNetwork {
    ClosedNetwork::new(
        vec![
            Station::queueing("cpu", 4, 1.0, 0.020),
            Station::queueing("disk", 1, 1.0, 0.012),
            Station::delay("lan", 1.0, 0.004),
        ],
        1.0,
    )
    .unwrap()
}

fn profile() -> ServiceDemandProfile {
    let samples = DemandSamples {
        station_names: vec!["cpu".into(), "disk".into()],
        server_counts: vec![4, 1],
        think_time: 1.0,
        levels: vec![1.0, 60.0, 200.0],
        demands: vec![vec![0.024, 0.021, 0.020], vec![0.012, 0.011, 0.0105]],
    };
    ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap()
}

fn sim_solver() -> SimSolver {
    let net = SimNetwork::new(
        vec![SimStation::queueing("s0", 1, 0.05)],
        Distribution::Exponential { mean: 0.5 },
    )
    .unwrap();
    SimSolver::new(
        net,
        SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 7,
            ..SimConfig::default()
        },
    )
}

/// All nine backends, each paired with a population depth that keeps the
/// suite fast (the DES backend runs one simulation per step).
fn all_backends() -> Vec<(Box<dyn ClosedSolver>, usize)> {
    let net = network();
    vec![
        (
            Box::new(ExactMvaSolver::new(net.clone())) as Box<dyn ClosedSolver>,
            60,
        ),
        (Box::new(MultiserverMvaSolver::new(net.clone())), 60),
        (Box::new(ConvolutionSolver::new(net.clone())), 60),
        (Box::new(LoadDependentSolver::from_network(&net)), 60),
        (Box::new(SchweitzerSolver::new(net)), 60),
        (Box::new(MvasdSolver::new(profile())), 60),
        (Box::new(MvasdSingleServerSolver::new(profile())), 60),
        (Box::new(MvasdSchweitzerSolver::new(profile())), 60),
        (Box::new(sim_solver()), 6),
    ]
}

#[test]
fn streaming_equals_batch_for_all_nine_backends() {
    for (solver, depth) in all_backends() {
        let batch = solver.solve(depth).unwrap();
        assert_eq!(batch.points.len(), depth, "{}", solver.name());

        // Draining the iterator reproduces the batch output bit-for-bit.
        let streamed = solver.start().unwrap().drain(depth).unwrap();
        assert_eq!(batch, streamed, "{}", solver.name());

        // Step-by-step: populations ascend one at a time.
        let mut iter = solver.start().unwrap();
        assert_eq!(iter.population(), 0, "{}", solver.name());
        for n in 1..=depth.min(5) {
            let p = iter.step().unwrap();
            assert_eq!(p.n, n, "{}", solver.name());
            assert_eq!(iter.population(), n, "{}", solver.name());
            assert_eq!(p, batch.points[n - 1], "{}", solver.name());
        }
    }
}

#[test]
fn snapshot_restore_mid_sweep_is_bit_identical() {
    for (solver, depth) in all_backends() {
        let batch = solver.solve(depth).unwrap();
        let cut = depth / 2;

        let mut iter = solver.start().unwrap();
        for _ in 0..cut {
            iter.step().unwrap();
        }
        let snapshot = iter.snapshot();
        assert_eq!(snapshot.population(), cut, "{}", solver.name());

        // The original iterator and the restored one both produce the
        // exact batch tail — and restoring twice works (snapshots are
        // reusable, not consumed).
        let direct = iter.drain(depth).unwrap();
        assert_eq!(direct.points, batch.points[cut..], "{}", solver.name());
        for _ in 0..2 {
            let resumed = snapshot.resume().drain(depth).unwrap();
            assert_eq!(resumed.points, batch.points[cut..], "{}", solver.name());
        }
    }
}

#[test]
fn zero_population_yields_empty_solutions_everywhere() {
    for (solver, _) in all_backends() {
        let sol = solver.solve(0).unwrap();
        assert!(sol.points.is_empty(), "{}", solver.name());
        assert!(!sol.station_names.is_empty(), "{}", solver.name());
        assert_eq!(sol.at(1), None, "{}", solver.name());
        // The streaming face agrees.
        let streamed = solver.start().unwrap().drain(0).unwrap();
        assert_eq!(sol, streamed, "{}", solver.name());
    }
}

#[test]
fn sla_early_exit_does_fewer_steps_than_the_full_sweep() {
    let solver = MultiserverMvaSolver::new(network());
    let cap = 400usize;
    let full = solver.solve(cap).unwrap();

    let mut iter = solver.start().unwrap();
    let outcome = run_until(
        iter.as_mut(),
        &[StopCondition::SlaResponseTime { max_response: 1.0 }],
        cap,
    )
    .unwrap();

    // The query stopped strictly early, on the first violating population.
    assert!(matches!(outcome.reason, StopReason::Met(_)));
    assert!(
        outcome.steps < cap,
        "expected early exit, took {} of {cap} steps",
        outcome.steps
    );
    let stop_n = outcome.solution.last().n;
    assert!(outcome.solution.last().response > 1.0);
    assert!(full.at(stop_n - 1).unwrap().response <= 1.0);
    // And the truncated stream is a bit-exact prefix of the full solve.
    assert_eq!(outcome.solution.points, full.points[..outcome.steps]);
}

#[test]
fn scenario_sweep_avoids_redundant_work() {
    let samples = DemandSamples {
        station_names: vec!["cpu".into(), "disk".into()],
        server_counts: vec![4, 1],
        think_time: 1.0,
        levels: vec![1.0, 60.0, 200.0],
        demands: vec![vec![0.024, 0.021, 0.020], vec![0.012, 0.011, 0.0105]],
    };
    let mut sweep = ScenarioSweep::new(samples).default_cap(200);

    // Three questions about the SAME model: a full sweep, an SLA query,
    // and a saturation query. One iterator serves all three.
    let report = sweep
        .run(&[
            Scenario::new("full"),
            Scenario::new("sla").until(StopCondition::SlaResponseTime { max_response: 1.0 }),
            Scenario::new("sat").until(StopCondition::BottleneckSaturation { utilization: 0.9 }),
        ])
        .unwrap();
    assert!(
        report.steps_computed < report.steps_demanded,
        "sharing saved nothing: computed {} of {} demanded",
        report.steps_computed,
        report.steps_demanded
    );
    // The shared-model sweep computes exactly one full pass.
    assert_eq!(report.steps_computed, 200);

    // A follow-up on the same model is a pure warm restart.
    let warm = sweep.run(&[Scenario::new("again")]).unwrap();
    assert_eq!(warm.steps_computed, 0);
    assert_eq!(warm.steps_demanded, 200);
    assert_eq!(
        warm.results[0].solution.points,
        report.result("full").unwrap().solution.points
    );
}

#[test]
fn property_streaming_equals_batch_on_random_networks() {
    check(
        "property_streaming_equals_batch_on_random_networks",
        &Config::default().cases(32),
        |g: &mut Gen| {
            let count = g.usize_in(1, 4);
            let stations = (0..count)
                .map(|i| {
                    let c = *g.choose(&[1usize, 2, 8]);
                    let d = g.f64_in(0.001, 0.08);
                    Station::queueing(&format!("s{i}"), c, 1.0, d)
                })
                .collect();
            let net = ClosedNetwork::new(stations, g.f64_in(0.1, 2.0)).unwrap();
            let n_max = g.usize_in(2, 80);
            let cut = g.usize_in(1, n_max - 1);

            let solvers: Vec<Box<dyn ClosedSolver>> = vec![
                Box::new(ExactMvaSolver::new(net.clone())),
                Box::new(MultiserverMvaSolver::new(net.clone())),
                Box::new(ConvolutionSolver::new(net.clone())),
                Box::new(LoadDependentSolver::from_network(&net)),
                Box::new(SchweitzerSolver::new(net)),
            ];
            for solver in &solvers {
                let batch = solver.solve(n_max).unwrap();
                let streamed = solver.start().unwrap().drain(n_max).unwrap();
                assert_eq!(batch, streamed, "{} n_max={n_max}", solver.name());

                // Snapshot at a random midpoint; the resumed tail must be
                // bit-identical even though the cut is arbitrary.
                let mut iter = solver.start().unwrap();
                for _ in 0..cut {
                    iter.step().unwrap();
                }
                let resumed = iter.snapshot().resume().drain(n_max).unwrap();
                assert_eq!(
                    resumed.points,
                    batch.points[cut..],
                    "{} cut={cut}",
                    solver.name()
                );
            }
        },
    );
}
