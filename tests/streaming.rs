//! Cross-backend streaming guarantees: every solver in the workspace —
//! the five static MVA solvers, the three MVASD variants, the
//! hierarchical Norton-aggregation solver, and the discrete-event
//! estimator — exposes a resumable population iterator
//! whose stream is bit-for-bit the batch solution, survives
//! snapshot/restore mid-sweep, and treats `n_max = 0` as an empty (but
//! validated) sweep. Also proves the early-exit and warm-restart savings
//! the streaming core exists for.

use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};
use mvasd_suite::core::solver::{MvasdSchweitzerSolver, MvasdSingleServerSolver, MvasdSolver};
use mvasd_suite::core::sweep::{Scenario, ScenarioSweep};
use mvasd_suite::numerics::propcheck::{check, Config, Gen};
use mvasd_suite::queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalSolver, Subsystem,
};
use mvasd_suite::queueing::mva::{
    load_dependent_mva, run_until, ClassSpec, ClosedSolver, ConvWorkspace, ConvolutionSolver,
    ExactMvaSolver, LdStation, LoadDependentSolver, MomSolver, MulticlassMvaSolver,
    MultiserverMvaSolver, RateFunction, SchweitzerSolver, StopCondition, StopReason, Workload,
};
use mvasd_suite::queueing::network::{ClosedNetwork, Station, StationKind};
use mvasd_suite::simnet::{Distribution, SimConfig, SimNetwork, SimStation};
use mvasd_suite::testbed::solver::SimSolver;

fn network() -> ClosedNetwork {
    ClosedNetwork::new(
        vec![
            Station::queueing("cpu", 4, 1.0, 0.020),
            Station::queueing("disk", 1, 1.0, 0.012),
            Station::delay("lan", 1.0, 0.004),
        ],
        1.0,
    )
    .unwrap()
}

fn profile() -> ServiceDemandProfile {
    let samples = DemandSamples {
        station_names: vec!["cpu".into(), "disk".into()],
        server_counts: vec![4, 1],
        think_time: 1.0,
        levels: vec![1.0, 60.0, 200.0],
        demands: vec![vec![0.024, 0.021, 0.020], vec![0.012, 0.011, 0.0105]],
    };
    ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap()
}

fn sim_solver() -> SimSolver {
    let net = SimNetwork::new(
        vec![SimStation::queueing("s0", 1, 0.05)],
        Distribution::Exponential { mean: 0.5 },
    )
    .unwrap();
    SimSolver::new(
        net,
        SimConfig {
            horizon: 400.0,
            warmup: 40.0,
            seed: 7,
            ..SimConfig::default()
        },
    )
}

/// The streaming `network()` topology with its cpu+disk pair wrapped in a
/// subsystem, so the hierarchical backend streams through a Norton
/// flow-equivalent server while exposing the same leaves.
fn hierarchical_network() -> HierarchicalNetwork {
    HierarchicalNetwork::new(
        vec![
            Subsystem::new(
                "svc",
                vec![
                    Station::queueing("cpu", 4, 1.0, 0.020).into(),
                    Station::queueing("disk", 1, 1.0, 0.012).into(),
                ],
            )
            .into(),
            Station::delay("lan", 1.0, 0.004).into(),
        ],
        1.0,
    )
    .unwrap()
}

/// All ten backends, each paired with a population depth that keeps the
/// suite fast (the DES backend runs one simulation per step).
fn all_backends() -> Vec<(Box<dyn ClosedSolver>, usize)> {
    let net = network();
    vec![
        (
            Box::new(ExactMvaSolver::new(net.clone())) as Box<dyn ClosedSolver>,
            60,
        ),
        (Box::new(MultiserverMvaSolver::new(net.clone())), 60),
        (Box::new(ConvolutionSolver::new(net.clone())), 60),
        (Box::new(LoadDependentSolver::from_network(&net)), 60),
        (Box::new(SchweitzerSolver::new(net)), 60),
        (Box::new(MvasdSolver::new(profile())), 60),
        (Box::new(MvasdSingleServerSolver::new(profile())), 60),
        (Box::new(MvasdSchweitzerSolver::new(profile())), 60),
        (
            Box::new(HierarchicalSolver::new(hierarchical_network())),
            60,
        ),
        (Box::new(sim_solver()), 6),
    ]
}

#[test]
fn streaming_equals_batch_for_all_ten_backends() {
    for (solver, depth) in all_backends() {
        let batch = solver.solve(depth).unwrap();
        assert_eq!(batch.points.len(), depth, "{}", solver.name());

        // Draining the iterator reproduces the batch output bit-for-bit.
        let streamed = solver.start().unwrap().drain(depth).unwrap();
        assert_eq!(batch, streamed, "{}", solver.name());

        // Step-by-step: populations ascend one at a time.
        let mut iter = solver.start().unwrap();
        assert_eq!(iter.population(), 0, "{}", solver.name());
        for n in 1..=depth.min(5) {
            let p = iter.step().unwrap();
            assert_eq!(p.n, n, "{}", solver.name());
            assert_eq!(iter.population(), n, "{}", solver.name());
            assert_eq!(p, batch.points[n - 1], "{}", solver.name());
        }
    }
}

#[test]
fn snapshot_restore_mid_sweep_is_bit_identical() {
    for (solver, depth) in all_backends() {
        let batch = solver.solve(depth).unwrap();
        let cut = depth / 2;

        let mut iter = solver.start().unwrap();
        for _ in 0..cut {
            iter.step().unwrap();
        }
        let snapshot = iter.snapshot();
        assert_eq!(snapshot.population(), cut, "{}", solver.name());

        // The original iterator and the restored one both produce the
        // exact batch tail — and restoring twice works (snapshots are
        // reusable, not consumed).
        let direct = iter.drain(depth).unwrap();
        assert_eq!(direct.points, batch.points[cut..], "{}", solver.name());
        for _ in 0..2 {
            let resumed = snapshot.resume().drain(depth).unwrap();
            assert_eq!(resumed.points, batch.points[cut..], "{}", solver.name());
        }
    }
}

#[test]
fn zero_population_yields_empty_solutions_everywhere() {
    for (solver, _) in all_backends() {
        let sol = solver.solve(0).unwrap();
        assert!(sol.points.is_empty(), "{}", solver.name());
        assert!(!sol.station_names.is_empty(), "{}", solver.name());
        assert_eq!(sol.at(1), None, "{}", solver.name());
        // The streaming face agrees.
        let streamed = solver.start().unwrap().drain(0).unwrap();
        assert_eq!(sol, streamed, "{}", solver.name());
    }
}

/// A two-class workload over the `network()` stations, deep enough (64
/// customers) that batch/stream divergence or snapshot drift would have
/// many steps to show up.
fn two_class_workload() -> Workload {
    Workload::new(
        vec!["cpu".into(), "disk".into(), "lan".into()],
        vec![
            StationKind::Queueing { servers: 4 },
            StationKind::Queueing { servers: 1 },
            StationKind::Delay,
        ],
        vec![
            ClassSpec {
                name: "heavy".into(),
                population: 40,
                think_time: 1.0,
                demands: vec![0.020, 0.012, 0.004],
            },
            ClassSpec {
                name: "light".into(),
                population: 24,
                think_time: 0.3,
                demands: vec![0.006, 0.002, 0.004],
            },
        ],
    )
    .unwrap()
}

#[test]
fn multiclass_streaming_equals_batch_for_both_backends() {
    // The two exact multiclass backends — the carried-lattice recursion and
    // the Method of Moments — honor the same streaming contract as the
    // single-class family: drain ≡ batch bit-for-bit, snapshots resume
    // bit-identically mid-path, and population 0 is an empty sweep.
    let w = two_class_workload();
    let depth = w.total_population();
    assert!(depth >= 60);
    let solvers: Vec<Box<dyn ClosedSolver>> = vec![
        Box::new(MulticlassMvaSolver::new(w.clone())),
        Box::new(MomSolver::new(w)),
    ];
    assert_eq!(solvers[0].name(), "multiclass-mva");
    assert_eq!(solvers[1].name(), "multiclass-mom");
    for solver in &solvers {
        let batch = solver.solve(depth).unwrap();
        assert_eq!(batch.points.len(), depth, "{}", solver.name());
        let streamed = solver.start().unwrap().drain(depth).unwrap();
        assert_eq!(batch, streamed, "{}", solver.name());

        // Snapshot mid-path: the resumed tail is bit-exact.
        let cut = depth / 2;
        let mut iter = solver.start().unwrap();
        for _ in 0..cut {
            iter.step().unwrap();
        }
        let resumed = iter.snapshot().resume().drain(depth).unwrap();
        assert_eq!(resumed.points, batch.points[cut..], "{}", solver.name());

        // Empty sweep.
        let empty = solver.solve(0).unwrap();
        assert!(empty.points.is_empty(), "{}", solver.name());
        assert_eq!(
            &empty.station_names[..],
            &["cpu".to_string(), "disk".into(), "lan".into()][..],
            "{}",
            solver.name()
        );
    }

    // The two backends agree on the aggregate stream to cross-validation
    // tolerance at every shared step (they share no arithmetic).
    let lat = solvers[0].solve(depth).unwrap();
    let mom = solvers[1].solve(depth).unwrap();
    for (a, b) in lat.points.iter().zip(&mom.points) {
        let rel = (a.throughput - b.throughput).abs() / a.throughput.abs().max(1e-300);
        assert!(rel <= 1e-8, "n={}: rel err {rel}", a.n);
    }
}

#[test]
fn sla_early_exit_does_fewer_steps_than_the_full_sweep() {
    let solver = MultiserverMvaSolver::new(network());
    let cap = 400usize;
    let full = solver.solve(cap).unwrap();

    let mut iter = solver.start().unwrap();
    let outcome = run_until(
        iter.as_mut(),
        &[StopCondition::SlaResponseTime { max_response: 1.0 }],
        cap,
    )
    .unwrap();

    // The query stopped strictly early, on the first violating population.
    assert!(matches!(outcome.reason, StopReason::Met(_)));
    assert!(
        outcome.steps < cap,
        "expected early exit, took {} of {cap} steps",
        outcome.steps
    );
    let stop_n = outcome.solution.last().n;
    assert!(outcome.solution.last().response > 1.0);
    assert!(full.at(stop_n - 1).unwrap().response <= 1.0);
    // And the truncated stream is a bit-exact prefix of the full solve.
    assert_eq!(outcome.solution.points, full.points[..outcome.steps]);
}

#[test]
fn scenario_sweep_avoids_redundant_work() {
    let samples = DemandSamples {
        station_names: vec!["cpu".into(), "disk".into()],
        server_counts: vec![4, 1],
        think_time: 1.0,
        levels: vec![1.0, 60.0, 200.0],
        demands: vec![vec![0.024, 0.021, 0.020], vec![0.012, 0.011, 0.0105]],
    };
    let mut sweep = ScenarioSweep::new(samples).default_cap(200);

    // Three questions about the SAME model: a full sweep, an SLA query,
    // and a saturation query. One iterator serves all three.
    let report = sweep
        .run(&[
            Scenario::new("full"),
            Scenario::new("sla").until(StopCondition::SlaResponseTime { max_response: 1.0 }),
            Scenario::new("sat").until(StopCondition::BottleneckSaturation { utilization: 0.9 }),
        ])
        .unwrap();
    assert!(
        report.steps_computed < report.steps_demanded,
        "sharing saved nothing: computed {} of {} demanded",
        report.steps_computed,
        report.steps_demanded
    );
    // The shared-model sweep computes exactly one full pass.
    assert_eq!(report.steps_computed, 200);

    // A follow-up on the same model is a pure warm restart.
    let warm = sweep.run(&[Scenario::new("again")]).unwrap();
    assert_eq!(warm.steps_computed, 0);
    assert_eq!(warm.steps_demanded, 200);
    assert_eq!(
        warm.results[0].solution.points,
        report.result("full").unwrap().solution.points
    );
}

#[test]
fn parallel_hierarchy_sweep_is_bit_identical_to_serial() {
    // A hierarchical sweep distributing dirty sub-tree extensions across a
    // 4-worker pool must reproduce the serial sweep bit for bit — the
    // plan/commit protocol makes the schedule invisible to the numerics —
    // while the stats record that the pool actually ran.
    let tier = |name: &str, cpu: f64, disk: f64| {
        Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 2, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        )
        .into()
    };
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("lb", 1, 1.0, 0.002).into(),
            tier("app", 0.010, 0.004),
            tier("search", 0.012, 0.005),
            tier("db", 0.016, 0.007),
            tier("store", 0.009, 0.003),
        ],
        0.5,
    )
    .unwrap();
    let scenarios = [
        Scenario::new("baseline"),
        Scenario::new("tuned").scale_demands(0.9),
        Scenario::new("slow").scale_demands(1.15),
    ];

    let mut serial =
        ScenarioSweep::over_hierarchy(net.clone(), AggregationOptions::exact()).default_cap(60);
    let a = serial.run(&scenarios).unwrap();
    assert_eq!(serial.stats().parallel_sub_solves, 0);

    let mut parallel =
        ScenarioSweep::over_hierarchy(net, AggregationOptions::exact().parallelism(4))
            .default_cap(60)
            .parallelism(4);
    let b = parallel.run(&scenarios).unwrap();
    assert!(
        parallel.stats().parallel_sub_solves > 0,
        "the dirty sub-trees never reached the pool: {:?}",
        parallel.stats()
    );
    // Three distinct resolved models under four workers.
    assert_eq!(parallel.stats().pool_occupancy, 3);

    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.solution, rb.solution, "{}", ra.label);
        for (pa, pb) in ra.solution.points.iter().zip(&rb.solution.points) {
            assert_eq!(pa.throughput.to_bits(), pb.throughput.to_bits());
            assert_eq!(pa.response.to_bits(), pb.response.to_bits());
            for (sa, sb) in pa.stations.iter().zip(&pb.stations) {
                assert_eq!(sa.queue.to_bits(), sb.queue.to_bits());
            }
        }
    }
}

#[test]
fn conv_workspace_stream_is_bit_identical_to_batch() {
    // The incremental convolution workspace IS the batch path now, but this
    // proves it from the outside: driving a ConvWorkspace one population at
    // a time reproduces the batch load-dependent solve bit-for-bit, a
    // cloned (snapshotted) workspace resumes bit-identically, and reading
    // previously computed populations back (decreasing `solve_at`) returns
    // the same bits without disturbing the carried columns.
    let stations = [
        LdStation::new("cpu", 0.020, RateFunction::MultiServer(4)),
        LdStation::new("disk", 0.012, RateFunction::SingleServer),
        LdStation::new("lan", 0.004, RateFunction::Delay),
    ];
    let depth = 120usize;
    let batch = load_dependent_mva(&stations, 1.0, depth).unwrap();

    let mut ws = ConvWorkspace::new(&stations, 1.0, &[4, 0, 0]).unwrap();
    ws.reserve(depth);
    let mut snapshot: Option<ConvWorkspace> = None;
    let mut streamed_x = Vec::with_capacity(depth);
    for n in 1..=depth {
        ws.advance().unwrap();
        assert_eq!(ws.population(), n);
        streamed_x.push(ws.throughput());
        if n == depth / 2 {
            snapshot = Some(ws.clone());
        }
    }
    for (n, (x, p)) in streamed_x.iter().zip(batch.points.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            p.throughput.to_bits(),
            "X(n={}) diverges from batch",
            n + 1
        );
    }

    // Snapshot/resume: the clone continues exactly where the original was.
    let mut resumed = snapshot.expect("snapshot taken mid-sweep");
    for n in (depth / 2 + 1)..=depth {
        resumed.advance().unwrap();
        assert_eq!(
            resumed.throughput().to_bits(),
            streamed_x[n - 1].to_bits(),
            "resumed X(n={n}) diverges"
        );
    }

    // Decreasing-population reads are served from the carried columns and
    // must not perturb them.
    let demands: Vec<f64> = stations.iter().map(|s| s.demand).collect();
    for n in [depth, depth / 2, 3, 1, depth] {
        ws.solve_at(n, &demands).unwrap();
        assert_eq!(ws.throughput().to_bits(), streamed_x[n - 1].to_bits());
    }
}

#[test]
fn scenario_sweep_warm_restart_is_bit_identical_across_the_quasi_static_switch() {
    // A 16-core bottleneck pushed well past the quasi-static switch: the
    // MVASD iterator inside the sweep hands the tail populations to the
    // carried ConvWorkspace. Warm restarts must replay the exact same bits
    // without recomputing anything.
    let samples = DemandSamples {
        station_names: vec!["cpu16".into(), "disk".into()],
        server_counts: vec![16, 1],
        think_time: 1.0,
        levels: vec![1.0, 100.0, 250.0],
        demands: vec![vec![0.165, 0.160, 0.158], vec![0.004, 0.004, 0.004]],
    };
    let mut sweep = ScenarioSweep::new(samples).default_cap(250);
    let first = sweep.run(&[Scenario::new("full")]).unwrap();
    assert_eq!(first.steps_computed, 250);

    let warm = sweep.run(&[Scenario::new("again")]).unwrap();
    assert_eq!(warm.steps_computed, 0, "warm restart recomputed steps");
    let a = &first.results[0].solution;
    let b = &warm.results[0].solution;
    assert_eq!(a, b);
    for (pa, pb) in a.points.iter().zip(b.points.iter()) {
        assert_eq!(pa.throughput.to_bits(), pb.throughput.to_bits());
        assert_eq!(pa.response.to_bits(), pb.response.to_bits());
    }
    // Sanity: the sweep genuinely saturates the 16-core station, so the
    // quasi-static (workspace) regime was exercised, not just the carried
    // recursion.
    let last = a.last();
    assert!(last.stations[0].utilization > 0.9, "switch never reached");
}

#[test]
fn property_streaming_equals_batch_on_random_networks() {
    check(
        "property_streaming_equals_batch_on_random_networks",
        &Config::default().cases(32),
        |g: &mut Gen| {
            let count = g.usize_in(1, 4);
            let stations = (0..count)
                .map(|i| {
                    let c = *g.choose(&[1usize, 2, 8]);
                    let d = g.f64_in(0.001, 0.08);
                    Station::queueing(&format!("s{i}"), c, 1.0, d)
                })
                .collect();
            let net = ClosedNetwork::new(stations, g.f64_in(0.1, 2.0)).unwrap();
            let n_max = g.usize_in(2, 80);
            let cut = g.usize_in(1, n_max - 1);

            let solvers: Vec<Box<dyn ClosedSolver>> = vec![
                Box::new(ExactMvaSolver::new(net.clone())),
                Box::new(MultiserverMvaSolver::new(net.clone())),
                Box::new(ConvolutionSolver::new(net.clone())),
                Box::new(LoadDependentSolver::from_network(&net)),
                Box::new(SchweitzerSolver::new(net)),
            ];
            for solver in &solvers {
                let batch = solver.solve(n_max).unwrap();
                let streamed = solver.start().unwrap().drain(n_max).unwrap();
                assert_eq!(batch, streamed, "{} n_max={n_max}", solver.name());

                // Snapshot at a random midpoint; the resumed tail must be
                // bit-identical even though the cut is arbitrary.
                let mut iter = solver.start().unwrap();
                for _ in 0..cut {
                    iter.step().unwrap();
                }
                let resumed = iter.snapshot().resume().drain(n_max).unwrap();
                assert_eq!(
                    resumed.points,
                    batch.points[cut..],
                    "{} cut={cut}",
                    solver.name()
                );
            }
        },
    );
}
