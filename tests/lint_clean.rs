//! Runs mvasd-lint in-process over the workspace: `cargo test` enforces the
//! numeric and hot-path contracts without a separate CI step, and seeded
//! violations prove each rule actually fires.

use mvasd_lint::rules::lint_file;
use mvasd_lint::{run, Options};

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    assert!(
        outcome.clean(),
        "the tree must lint clean:\n{}",
        outcome.render_text()
    );
    assert!(outcome.files_scanned > 50, "scan found the workspace");
    assert!(
        outcome.stale.is_empty(),
        "baseline is looser than reality; run `cargo run -p mvasd-lint -- --fix-baseline`:\n{}",
        outcome.render_text()
    );
}

#[test]
fn baseline_ratchet_is_below_the_issue_count() {
    // 462 naked `unwrap()` sites existed when the ratchet was introduced;
    // the recorded debt must only ever go down.
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    assert!(
        outcome.baseline_unwrap_total < 462,
        "baseline records {} unwrap sites, ratchet requires < 462",
        outcome.baseline_unwrap_total
    );
}

#[test]
fn json_report_parses_with_the_obsv_parser() {
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    let parsed = mvasd_suite::obsv::json::parse(&outcome.render_json()).expect("valid JSON");
    let schema = parsed
        .get("schema")
        .and_then(|v| v.as_str())
        .expect("schema field");
    assert_eq!(schema, "mvasd-lint/1");
}

/// Each seeded violation must produce exactly the advertised rule code when
/// dropped into a library source path.
#[test]
fn seeded_violations_fire_per_rule() {
    let lib = "crates/demo/src/lib.rs";
    let mva = "crates/queueing/src/mva/seeded.rs";
    let cases: &[(&str, &str, &str)] = &[
        ("L1", "float-eq", "fn f(x: f64) -> bool { x == 0.0 }"),
        ("L2", "log-domain", "fn f(x: f64) -> f64 { x.exp() }"),
        ("L3", "unwrap", "fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
        (
            "L4",
            "no-alloc",
            "// lint: no-alloc\nfn f(v: &mut Vec<u8>) { v.push(1); }",
        ),
        ("L5", "allow-justify", "#[allow(dead_code)]\nfn f() {}"),
    ];
    for (rule, code, src) in cases {
        let path = if *rule == "L2" { mva } else { lib };
        let findings = lint_file(path, src);
        let expect = format!("{rule}:{code}");
        assert!(
            findings.iter().any(|f| f.rule_code() == expect),
            "{expect} did not fire on {src:?}: {findings:?}"
        );
    }
}

/// The escape hatches must suppress — with a reason — and A0 must catch a
/// reasonless annotation.
#[test]
fn annotations_suppress_and_demand_reasons() {
    let lib = "crates/demo/src/lib.rs";
    let ok = "// lint: float-eq-ok zero is an exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }";
    assert!(
        lint_file(lib, ok).is_empty(),
        "justified annotation must suppress L1"
    );
    let bare = "// lint: float-eq-ok\nfn f(x: f64) -> bool { x == 0.0 }";
    let findings = lint_file(lib, bare);
    assert!(
        findings.iter().any(|f| f.rule_code() == "A0:annotation"),
        "reasonless annotation must fire A0: {findings:?}"
    );
}

/// Test-only code is exempt: the same unwrap under `#[cfg(test)]` is fine.
#[test]
fn cfg_test_regions_are_exempt() {
    let lib = "crates/demo/src/lib.rs";
    let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}";
    assert!(
        lint_file(lib, src).is_empty(),
        "cfg(test) regions must be exempt from L3"
    );
}
