//! Runs mvasd-lint in-process over the workspace: `cargo test` enforces the
//! numeric and hot-path contracts without a separate CI step, and seeded
//! violations prove each rule actually fires.

use mvasd_lint::rules::lint_file;
use mvasd_lint::{run, Options};

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR of the root package IS the workspace root.
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    assert!(
        outcome.clean(),
        "the tree must lint clean:\n{}",
        outcome.render_text()
    );
    assert!(outcome.files_scanned > 50, "scan found the workspace");
    assert!(
        outcome.stale.is_empty(),
        "baseline is looser than reality; run `cargo run -p mvasd-lint -- --fix-baseline`:\n{}",
        outcome.render_text()
    );
}

#[test]
fn baseline_ratchet_is_below_the_issue_count() {
    // 462 naked `unwrap()` sites existed when the ratchet was introduced;
    // the recorded debt must only ever go down.
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    assert!(
        outcome.baseline_unwrap_total < 462,
        "baseline records {} unwrap sites, ratchet requires < 462",
        outcome.baseline_unwrap_total
    );
}

#[test]
fn json_report_parses_with_the_obsv_parser() {
    let outcome = run(&Options::at_root(workspace_root())).expect("lint run on the checkout");
    let parsed = mvasd_suite::obsv::json::parse(&outcome.render_json()).expect("valid JSON");
    let schema = parsed
        .get("schema")
        .and_then(|v| v.as_str())
        .expect("schema field");
    assert_eq!(schema, "mvasd-lint/1");
}

/// Each seeded violation must produce exactly the advertised rule code when
/// dropped into a library source path.
#[test]
fn seeded_violations_fire_per_rule() {
    let lib = "crates/demo/src/lib.rs";
    let mva = "crates/queueing/src/mva/seeded.rs";
    let cases: &[(&str, &str, &str)] = &[
        ("L1", "float-eq", "fn f(x: f64) -> bool { x == 0.0 }"),
        ("L2", "log-domain", "fn f(x: f64) -> f64 { x.exp() }"),
        ("L3", "unwrap", "fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
        (
            "L4",
            "no-alloc",
            "// lint: no-alloc\nfn f(v: &mut Vec<u8>) { v.push(1); }",
        ),
        ("L5", "allow-justify", "#[allow(dead_code)]\nfn f() {}"),
        (
            "L7",
            "log-as-linear",
            "fn f(a: f64, b: f64) -> f64 { a.ln() * b.ln() }",
        ),
        (
            "L8",
            "captured-mut",
            "fn f() { let mut hits = 0; pool::scoped_indexed(4, 2, |i| { hits += 1; i }); }",
        ),
        (
            "L9",
            "reduction-order",
            "// lint: bit-identical\nfn f(rx: &Receiver<f64>) -> f64 { rx.recv().unwrap_or(0.0) }",
        ),
    ];
    for (rule, code, src) in cases {
        let path = if *rule == "L2" { mva } else { lib };
        let findings = lint_file(path, src);
        let expect = format!("{rule}:{code}");
        assert!(
            findings.iter().any(|f| f.rule_code() == expect),
            "{expect} did not fire on {src:?}: {findings:?}"
        );
    }
}

/// The escape hatches must suppress — with a reason — and A0 must catch a
/// reasonless annotation.
#[test]
fn annotations_suppress_and_demand_reasons() {
    let lib = "crates/demo/src/lib.rs";
    let ok = "// lint: float-eq-ok zero is an exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }";
    assert!(
        lint_file(lib, ok).is_empty(),
        "justified annotation must suppress L1"
    );
    let bare = "// lint: float-eq-ok\nfn f(x: f64) -> bool { x == 0.0 }";
    let findings = lint_file(lib, bare);
    assert!(
        findings.iter().any(|f| f.rule_code() == "A0:annotation"),
        "reasonless annotation must fire A0: {findings:?}"
    );
}

fn real_source(rel: &str) -> (String, String) {
    let path = workspace_root().join(rel);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    (rel.replace('\\', "/"), src)
}

fn codes(path: &str, src: &str) -> Vec<String> {
    lint_file(path, src).iter().map(|f| f.rule_code()).collect()
}

/// Mutation testing against the real tree: each shipped hot-path file is
/// clean as-is, and a single seeded mutation — the exact failure mode the
/// rule exists to catch — makes the rule fire. This proves the rules run
/// with teeth on the code they guard, not just on synthetic snippets.
#[test]
fn seeded_mutations_of_real_sources_fire_l7_l8_l9() {
    // L7: the convolution workspace discharges its log-domain tables
    // through a ln-named binding; squaring the log value is log-as-linear.
    let (path, src) = real_source("crates/queueing/src/mva/convolution/workspace.rs");
    assert!(!codes(&path, &src).iter().any(|c| c.starts_with("L7")));
    let mutated = src.replace(
        "let ln_demand = s.demand.ln();",
        "let ln_demand = s.demand.ln() * s.demand.ln();",
    );
    assert_ne!(
        mutated, src,
        "L7 mutation anchor vanished from workspace.rs"
    );
    assert!(
        codes(&path, &mutated).contains(&"L7:log-as-linear".to_string()),
        "L7 must fire on a log*log mutation of workspace.rs"
    );

    // L8: the sweep's pool closure locks per-group job slots under an
    // interference-ok annotation; deleting the annotation exposes the
    // interior mutability to the rule.
    let (path, src) = real_source("crates/core/src/sweep.rs");
    assert!(!codes(&path, &src).iter().any(|c| c.starts_with("L8")));
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains("lint: interference-ok"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(mutated, src, "L8 mutation anchor vanished from sweep.rs");
    assert!(
        codes(&path, &mutated).contains(&"L8:interior-mut".to_string()),
        "L8 must fire when sweep.rs loses its interference-ok annotation"
    );

    // L8 commit-phase: deleting the commit-phase markers turns the
    // post-pool cache writes into unmarked commits.
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains("lint: commit-phase"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        codes(&path, &mutated).contains(&"L8:unmarked-commit".to_string()),
        "L8 must fire when sweep.rs loses its commit-phase markers"
    );

    // L9: `ensure` is marked bit-identical; a channel receive inside it
    // would make results depend on completion order.
    let (path, src) = real_source("crates/queueing/src/hierarchy.rs");
    assert!(!codes(&path, &src).iter().any(|c| c.starts_with("L9")));
    let mutated = src.replace(
        "if dirty.is_empty() {",
        "let _probe = self.status_rx.recv();\n        if dirty.is_empty() {",
    );
    assert_ne!(
        mutated, src,
        "L9 mutation anchor vanished from hierarchy.rs"
    );
    assert!(
        codes(&path, &mutated).contains(&"L9:reduction-order".to_string()),
        "L9 must fire on a recv() seeded into the bit-identical ensure fn"
    );
}

/// Test-only code is exempt: the same unwrap under `#[cfg(test)]` is fine.
#[test]
fn cfg_test_regions_are_exempt() {
    let lib = "crates/demo/src/lib.rs";
    let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}";
    assert!(
        lint_file(lib, src).is_empty(),
        "cfg(test) regions must be exempt from L3"
    );
}
