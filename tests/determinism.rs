//! Determinism guarantees of the hermetic toolchain: with the in-house
//! xoshiro256++ RNG there is no platform- or scheduling-dependent entropy
//! anywhere, so identical seeds must give *bit-identical* results — across
//! repeated runs and across parallelism levels.

use mvasd_suite::queueing::mva::ClosedSolver;
use mvasd_suite::simnet::{Distribution, SimConfig, SimNetwork, SimStation, Simulation};
use mvasd_suite::testbed::apps::jpetstore;
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};
use mvasd_suite::testbed::solver::SimSolver;

fn three_tier() -> SimNetwork {
    SimNetwork::new(
        vec![
            SimStation::queueing("web", 4, 0.012),
            SimStation::queueing("app", 2, 0.020),
            SimStation::queueing("db", 1, 0.009),
        ],
        Distribution::Exponential { mean: 1.0 },
    )
    .unwrap()
}

#[test]
fn same_seed_gives_bit_identical_simulation_reports() {
    let cfg = SimConfig {
        customers: 40,
        horizon: 800.0,
        warmup: 100.0,
        seed: 0xFEED,
        ..SimConfig::default()
    };
    let run = || {
        Simulation::new(three_tier(), cfg.clone())
            .unwrap()
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    // Bit-identical, not merely close: compare every float exactly.
    assert_eq!(a.system.throughput.to_bits(), b.system.throughput.to_bits());
    assert_eq!(
        a.system.mean_response.to_bits(),
        b.system.mean_response.to_bits()
    );
    assert_eq!(a.system.completions, b.system.completions);
    for (sa, sb) in a.stations.iter().zip(b.stations.iter()) {
        assert_eq!(sa.utilization.to_bits(), sb.utilization.to_bits());
        assert_eq!(sa.mean_queue.to_bits(), sb.mean_queue.to_bits());
    }
}

#[test]
fn sim_solver_is_bit_identical_across_runs() {
    let cfg = SimConfig {
        horizon: 400.0,
        warmup: 50.0,
        seed: 3,
        ..SimConfig::default()
    };
    let solve = || SimSolver::new(three_tier(), cfg.clone()).solve(8).unwrap();
    let (a, b) = (solve(), solve());
    for i in 1..=8 {
        assert_eq!(
            a.at(i).unwrap().throughput.to_bits(),
            b.at(i).unwrap().throughput.to_bits(),
            "X at {i}"
        );
        assert_eq!(
            a.at(i).unwrap().response.to_bits(),
            b.at(i).unwrap().response.to_bits(),
            "R at {i}"
        );
    }
}

#[test]
fn campaign_results_do_not_depend_on_parallelism() {
    // Each level owns a seed derived from (base_seed, level), so the thread
    // interleaving chosen by `std::thread::scope` cannot leak into results.
    let app = jpetstore::model();
    let levels = [1u64, 30, 90];
    let run_with = |parallelism: usize| {
        let cfg = CampaignConfig {
            parallelism,
            test_duration: 120.0,
            ..CampaignConfig::default()
        };
        run_campaign(&app, &levels, &cfg).unwrap()
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    for (s, p) in serial.points.iter().zip(parallel.points.iter()) {
        assert_eq!(s.users, p.users);
        assert_eq!(s.throughput.to_bits(), p.throughput.to_bits());
        assert_eq!(s.response.to_bits(), p.response.to_bits());
    }
}
