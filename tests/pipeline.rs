//! End-to-end integration: the full Fig. 17 pipeline across all five
//! crates — design points → simulated load tests → demand extraction →
//! spline interpolation → MVASD prediction → accuracy inside the paper's
//! bands.

use mvasd_suite::core::accuracy::compare_solution;
use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::designer::SamplingStrategy;
use mvasd_suite::core::pipeline::PredictionWorkflow;
use mvasd_suite::core::profile::{DemandAxis, InterpolationKind, ServiceDemandProfile};
use mvasd_suite::testbed::apps::{jpetstore, vins};
use mvasd_suite::testbed::campaign::{run_campaign, CampaignConfig};

fn quick_cfg() -> CampaignConfig {
    CampaignConfig {
        test_duration: 400.0,
        ..CampaignConfig::default()
    }
}

#[test]
fn vins_pipeline_within_paper_bands() {
    // The paper's headline claim (Table 4): MVASD throughput deviation
    // < 3 %, cycle-time deviation < 9 %. VINS keeps every multi-server
    // station below half utilization, so this exercises the carried
    // double-double recursion end to end.
    let app = vins::model();
    let levels = [1u64, 52, 103, 203, 406];
    let campaign = run_campaign(&app, &levels, &quick_cfg()).unwrap();
    let profile = ServiceDemandProfile::from_samples(
        &campaign.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();
    let prediction = mvasd(&profile, 406).unwrap();
    let report = compare_solution(
        "MVASD",
        &prediction,
        &campaign.levels(),
        &campaign.throughputs(),
        &campaign.cycle_times(),
    )
    .unwrap();
    assert!(
        report.throughput_mean_pct < 3.0,
        "throughput deviation {:.2}%",
        report.throughput_mean_pct
    );
    assert!(
        report.cycle_mean_pct < 9.0,
        "cycle deviation {:.2}%",
        report.cycle_mean_pct
    );
}

#[test]
fn jpetstore_pipeline_crosses_saturation() {
    // JPetStore saturates its 16-core DB CPU, exercising the quasi-static
    // convolution phase of MVASD. Evaluate through the knee.
    let app = jpetstore::model();
    let levels = [1u64, 28, 70, 140, 168];
    let campaign = run_campaign(&app, &levels, &quick_cfg()).unwrap();
    let profile = ServiceDemandProfile::from_samples(
        &campaign.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();
    let prediction = mvasd(&profile, 168).unwrap();
    let report = compare_solution(
        "MVASD",
        &prediction,
        &campaign.levels(),
        &campaign.throughputs(),
        &campaign.cycle_times(),
    )
    .unwrap();
    assert!(
        report.throughput_mean_pct < 3.0,
        "throughput deviation {:.2}%",
        report.throughput_mean_pct
    );
    assert!(
        report.cycle_mean_pct < 9.0,
        "cycle deviation {:.2}%",
        report.cycle_mean_pct
    );
    // Physicality: never exceed the interpolated bottleneck ceiling.
    for p in &prediction.points {
        let demands = profile.demands_at(p.n as f64);
        let cap = demands
            .iter()
            .zip(profile.stations().iter())
            .map(|(d, s)| d / s.servers as f64)
            .fold(0.0f64, f64::max);
        assert!(p.throughput <= 1.0 / cap + 1e-6, "n={}", p.n);
    }
}

#[test]
fn workflow_design_then_predict() {
    // PredictionWorkflow glue: design Chebyshev points on a smaller range,
    // measure, predict; prediction at an unmeasured level must be close to
    // a direct measurement there.
    let app = vins::model();
    let wf = PredictionWorkflow {
        strategy: SamplingStrategy::Chebyshev,
        test_points: 4,
        range: (1.0, 160.0),
        ..PredictionWorkflow::default()
    };
    let levels = wf.design().unwrap();
    let campaign = run_campaign(&app, &levels, &quick_cfg()).unwrap();
    let prediction = wf.predict(&campaign.to_demand_samples(), 160).unwrap();

    let probe = run_campaign(&app, &[90], &quick_cfg()).unwrap();
    let measured = probe.at(90).unwrap();
    let predicted = prediction.at(90).unwrap();
    let rel = (predicted.throughput - measured.throughput).abs() / measured.throughput;
    assert!(
        rel < 0.05,
        "predicted {} vs measured {} at N=90",
        predicted.throughput,
        measured.throughput
    );
}

#[test]
fn mva_i_is_consistently_worse_than_mvasd() {
    // The paper's core comparative claim, end to end: static MVA with
    // cold-measured demands (MVA 1) deviates much more than MVASD.
    let app = vins::model();
    let levels = [1u64, 40, 120, 250];
    let campaign = run_campaign(&app, &levels, &quick_cfg()).unwrap();

    let profile = ServiceDemandProfile::from_samples(
        &campaign.to_demand_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();
    let sd = mvasd(&profile, 250).unwrap();
    let sd_report = compare_solution(
        "MVASD",
        &sd,
        &campaign.levels(),
        &campaign.throughputs(),
        &campaign.cycle_times(),
    )
    .unwrap();

    let cold = campaign.at(1).unwrap().demands.clone();
    let net = app.closed_network_with(&cold).unwrap();
    let mva1 = mvasd_suite::queueing::mva::multiserver_mva(&net, 250).unwrap();
    let mva1_report = compare_solution(
        "MVA 1",
        &mva1,
        &campaign.levels(),
        &campaign.throughputs(),
        &campaign.cycle_times(),
    )
    .unwrap();

    assert!(
        sd_report.throughput_mean_pct < mva1_report.throughput_mean_pct / 2.0,
        "MVASD {:.2}% should beat MVA1 {:.2}% by at least 2x",
        sd_report.throughput_mean_pct,
        mva1_report.throughput_mean_pct
    );
}
