//! Proves the zero-allocation steady state of the incremental convolution
//! workspace: after `reserve` and a warm-up, advancing populations performs
//! no heap allocation at all.
//!
//! The whole file holds exactly one test so the counting allocator sees no
//! interference from parallel test threads.

#![allow(unsafe_code)] // a counting GlobalAlloc cannot be written without unsafe

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mvasd_suite::queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalWorkspace, Subsystem,
};
use mvasd_suite::queueing::mva::{
    ClassSpec, ConvWorkspace, LdStation, MulticlassWorkspace, RateFunction, Workload,
};
use mvasd_suite::queueing::network::{Station, StationKind};

/// Counts every allocator entry point; deallocation is uncounted (freeing
/// is fine in steady state, allocating is not).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn workspace_steady_state_allocates_nothing() {
    // VINS-shaped: a 16-core bottleneck with tracked marginals, a
    // single-server disk, and a delay stage — all three factor kinds.
    let stations = [
        LdStation::new("cpu16", 0.055, RateFunction::MultiServer(16)),
        LdStation::new("disk", 0.0098, RateFunction::SingleServer),
        LdStation::new("lan", 0.0014, RateFunction::Delay),
    ];
    let demands: Vec<f64> = stations.iter().map(|s| s.demand).collect();

    let mut ws = ConvWorkspace::new(&stations, 1.0, &[16, 0, 0]).unwrap();
    ws.reserve(1600);

    // Warm-up: fill the carried columns well past any lazy growth.
    for _ in 0..600 {
        ws.advance().unwrap();
    }
    let mut sink = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..900 {
        ws.advance().unwrap();
        sink += ws.throughput() + ws.queues()[0] + ws.marginals_of(0)[0];
    }
    // Same-demand point queries (the sweep warm-restart shape) must also be
    // allocation-free: they extend or re-read the carried columns.
    ws.solve_at(1550, &demands).unwrap();
    ws.solve_at(800, &demands).unwrap();
    sink += ws.throughput();
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state advance allocated {} times",
        after - before
    );

    // The hierarchical aggregation engine inherits the same contract:
    // after `reserve` pre-extends every subsystem profile (and rebuilds
    // the parent once), per-step aggregation + disaggregation is
    // allocation-free.
    let tier = |name: &str, cpu: f64, disk: f64| {
        Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 2, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        )
        .into()
    };
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("lb", 1, 1.0, 0.002).into(),
            tier("app", 0.010, 0.004),
            tier("db", 0.016, 0.007),
        ],
        0.5,
    )
    .unwrap();
    let mut hws = HierarchicalWorkspace::new(&net, AggregationOptions::exact(), None).unwrap();
    hws.reserve(400).unwrap();
    for _ in 0..150 {
        hws.advance().unwrap();
    }
    let mut hsink = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..200 {
        hws.advance().unwrap();
        hsink += hws.throughput() + hws.leaf_queues()[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(hsink.is_finite());
    assert_eq!(
        after - before,
        0,
        "hierarchical steady-state advance allocated {} times",
        after - before
    );

    // A configured worker pool must not cost the steady state anything:
    // the parallel plan phase defers its first allocation to the first
    // dirty subsystem, and a reserved engine has none — so a 4-worker
    // engine advances exactly as allocation-free as the serial one.
    let mut pws =
        HierarchicalWorkspace::new(&net, AggregationOptions::exact().parallelism(4), None).unwrap();
    pws.reserve(400).unwrap();
    for _ in 0..150 {
        pws.advance().unwrap();
    }
    let mut psink = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..200 {
        pws.advance().unwrap();
        psink += pws.throughput() + pws.leaf_queues()[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(psink.is_finite());
    assert_eq!(
        after - before,
        0,
        "parallel hierarchical steady-state advance allocated {} times",
        after - before
    );

    // The carried multiclass workspace makes the same promise: the whole
    // lattice is allocated up front, so advancing a customer (filling one
    // slab) and reading the per-class outputs never touches the allocator.
    let workload = Workload::new(
        vec!["cpu".into(), "disk".into(), "lan".into()],
        vec![
            StationKind::Queueing { servers: 4 },
            StationKind::Queueing { servers: 1 },
            StationKind::Delay,
        ],
        vec![
            ClassSpec {
                name: "a".into(),
                population: 30,
                think_time: 1.0,
                demands: vec![0.020, 0.012, 0.004],
            },
            ClassSpec {
                name: "b".into(),
                population: 20,
                think_time: 0.5,
                demands: vec![0.006, 0.002, 0.004],
            },
            ClassSpec {
                name: "c".into(),
                population: 10,
                think_time: 0.1,
                demands: vec![0.003, 0.001, 0.002],
            },
        ],
    )
    .unwrap();
    let path = workload.proportional_path();
    let mut mws = MulticlassWorkspace::new(&workload).unwrap();
    let warmup = 20usize;
    for &class in &path[..warmup] {
        mws.advance(class).unwrap();
    }
    let mut msink = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for &class in &path[warmup..] {
        mws.advance(class).unwrap();
        msink += mws.class_throughputs()[0]
            + mws.station_queues()[0]
            + mws.class_station_queues()[0]
            + mws.station_utilizations()[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(msink.is_finite());
    assert_eq!(
        after - before,
        0,
        "multiclass steady-state advance allocated {} times",
        after - before
    );
}
