//! Cross-crate observability invariants: instrumentation must be invisible
//! to the numerics (bit-for-bit), nearly free when no recorder is installed,
//! and complete enough that the streaming engine's work accounting can be
//! read back off a collector snapshot.
//!
//! The recorder slot is process-global, so every test here serializes on
//! one mutex.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mvasd_suite::core::profile::{DemandAxis, DemandSamples, InterpolationKind};
use mvasd_suite::core::solver::MvasdSolver;
use mvasd_suite::core::sweep::{Scenario, ScenarioSweep, SweepStats};
use mvasd_suite::obsv;
use mvasd_suite::queueing::hierarchy::{
    AggregationOptions, HierarchicalNetwork, HierarchicalSolver, NetworkNode, ProfileCache,
    Subsystem,
};
use mvasd_suite::queueing::mva::{
    run_until, ClassSpec, ClosedSolver, MomSolver, MulticlassMvaSolver, StopCondition, Workload,
};
use mvasd_suite::queueing::network::{Station, StationKind};
use mvasd_suite::testbed::apps::{vins, AppModel};

/// Serializes tests that touch the global recorder slot.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn vins_samples() -> DemandSamples {
    let app = vins::model();
    samples_of(&app, &vins::STANDARD_LEVELS)
}

fn samples_of(app: &AppModel, levels: &[u64]) -> DemandSamples {
    let levels: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| {
                levels
                    .iter()
                    .map(|&l| app.stations[k].curve.at(l))
                    .collect()
            })
            .collect(),
    }
}

fn vins_solver() -> MvasdSolver {
    let profile = mvasd_suite::core::profile::ServiceDemandProfile::from_samples(
        &vins_samples(),
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .expect("VINS profile");
    MvasdSolver::new(profile)
}

/// Satellite 4: a no-op recorder must not perturb results. The exact-MVA
/// pipeline is pure floating-point arithmetic; instrumentation only ever
/// observes, so solutions must match bit for bit, not just approximately.
#[test]
fn noop_recorder_leaves_solutions_bit_identical() {
    let _guard = lock();
    let solver = vins_solver();
    let bare = solver.solve(400).expect("uninstrumented solve");
    let instrumented = {
        let _scope = obsv::scoped(Arc::new(obsv::NoopRecorder));
        solver.solve(400).expect("instrumented solve")
    };
    // PartialEq on MvaSolution compares every f64 exactly.
    assert_eq!(bare, instrumented);
    let collected = {
        let _scope = obsv::scoped(Arc::new(obsv::Collector::new()));
        solver.solve(400).expect("collected solve")
    };
    assert_eq!(bare, collected);
}

/// Acceptance guard: with no recorder installed, the instrumentation on the
/// exact-MVA hot path must cost well under 2 % of a VINS n=1500 solve. The
/// per-step overhead is a handful of relaxed atomic loads, so instead of
/// racing two timers we measure the disabled-path calls directly: 1500
/// iterations' worth of instrumentation must be cheaper than 2 % of one
/// real solve.
#[test]
fn disabled_instrumentation_is_under_two_percent_of_a_solve() {
    let _guard = lock();
    assert!(!obsv::enabled(), "no recorder may leak into this test");
    let solver = vins_solver();
    solver.solve(1500).expect("warmup");
    let mut solve_cost = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(solver.solve(1500).expect("timed solve"));
        solve_cost = solve_cost.min(start.elapsed());
    }

    let start = Instant::now();
    let mut probe = obsv::HealthProbe::new("test.overhead");
    for i in 0..1500u64 {
        // The exact per-step sequence the solvers execute when disabled,
        // including the numeric-health instrumentation.
        let span = obsv::span("mvasd.step");
        obsv::counter("solver.steps", std::hint::black_box(1));
        obsv::observe("schweitzer.iterations_per_step", std::hint::black_box(i));
        probe.watch(std::hint::black_box(-(i as f64)));
        probe.count_underflow();
        drop(span);
    }
    drop(probe);
    let noop_cost = start.elapsed();
    assert!(
        noop_cost < solve_cost.mul_f64(0.02),
        "noop instrumentation {noop_cost:?} vs solve {solve_cost:?}"
    );
}

/// Sweep cache hits/misses, warm-restart savings, and `SweepStats` must all
/// be observable: the struct and the collector snapshot tell one story.
#[test]
fn sweep_cache_metrics_land_in_collector_snapshot() {
    let _guard = lock();
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());

    let mut sweep = ScenarioSweep::new(vins_samples()).default_cap(120);
    let scenarios = [
        Scenario::new("baseline"),
        Scenario::new("tuned").scale_demands(0.9),
    ];
    sweep.run(&scenarios).expect("cold run");
    sweep.run(&scenarios).expect("warm replay");

    let stats = sweep.stats();
    assert_eq!(
        stats,
        SweepStats {
            steps_computed: 240,
            steps_demanded: 480,
            cache_hits: 2,
            cache_misses: 2,
            sub_solves: 0,
            sub_cache_hits: 0,
            parallel_sub_solves: 0,
            // Two distinct models under the default single worker.
            pool_occupancy: 1,
        }
    );
    assert_eq!(stats.steps_saved(), 240);

    let snap = collector.snapshot();
    assert_eq!(snap.counter("sweep.cache_hits"), stats.cache_hits as u64);
    assert_eq!(
        snap.counter("sweep.cache_misses"),
        stats.cache_misses as u64
    );
    assert_eq!(
        snap.counter("sweep.steps_computed"),
        stats.steps_computed as u64
    );
    assert_eq!(
        snap.counter("sweep.steps_demanded"),
        stats.steps_demanded as u64
    );
    assert_eq!(
        snap.counter("sweep.steps_saved"),
        stats.steps_saved() as u64
    );
    assert_eq!(snap.gauge("sweep.cached_steps"), Some(240.0));
    assert_eq!(snap.spans_named("sweep.run"), 2);
    // The cold run swept two models of 120 steps each.
    assert_eq!(snap.counter("solver.steps"), 240);
}

/// The hierarchical aggregation layer is observable end to end: isolation
/// solves, profile-cache hits, profile growth, and per-subsystem spans all
/// land in the collector — and, as everywhere else, recorders observe
/// without perturbing a single bit of the numerics.
#[test]
fn aggregation_metrics_land_in_collector_snapshot() {
    let _guard = lock();
    let tier = |name: &str, cpu: f64, disk: f64| {
        NetworkNode::from(Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 4, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        ))
    };
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("lb", 1, 1.0, 0.002).into(),
            tier("app-1", 0.010, 0.004),
            tier("app-2", 0.010, 0.004), // same shape as app-1 → one cache hit
            tier("db", 0.016, 0.007),
        ],
        0.5,
    )
    .expect("hierarchical model");

    // Bit-identity first: aggregation is pure floating point, recorders
    // (and the shared profile cache) only ever observe.
    let bare = HierarchicalSolver::new(net.clone())
        .solve(60)
        .expect("uninstrumented solve");
    let noop = {
        let _scope = obsv::scoped(Arc::new(obsv::NoopRecorder));
        HierarchicalSolver::new(net.clone())
            .solve(60)
            .expect("instrumented solve")
    };
    assert_eq!(bare, noop);

    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());
    let cache = Arc::new(ProfileCache::new());
    let collected = HierarchicalSolver::new(net.clone())
        .with_cache(cache.clone())
        .solve(60)
        .expect("collected solve");
    assert_eq!(bare, collected);

    let snap = collector.snapshot();
    let stats = cache.stats();
    // Three subsystems, two distinct shapes: two isolation solves, one hit.
    assert_eq!(stats.solves, 2);
    assert_eq!(stats.hits, 1);
    assert_eq!(snap.counter("aggregation.solves"), stats.solves);
    assert_eq!(snap.counter("aggregation.cache_hits"), stats.hits);
    // Every subsystem's throughput profile covers populations 1..=60.
    assert!(
        snap.counter("aggregation.profile_len") >= 3 * 60,
        "only {} profile entries recorded",
        snap.counter("aggregation.profile_len")
    );
    assert!(
        snap.spans_named("aggregation.subsystem") >= 3,
        "each subsystem isolation solve opens at least one span"
    );
    assert_eq!(snap.spans_named("hierarchy.step"), 60);
    assert_eq!(snap.counter("solver.steps"), 60);

    // Second-level memoization in sweeps is observable too: two scenarios
    // over the same topology (one rescaled) re-solve every distinct
    // subsystem shape per scenario, and the counters mirror `SweepStats`.
    let mut sweep = ScenarioSweep::over_hierarchy(net, AggregationOptions::exact()).default_cap(40);
    let scenarios = [
        Scenario::new("baseline"),
        Scenario::new("tuned").scale_demands(0.9),
    ];
    sweep.run(&scenarios).expect("hierarchical sweep");
    let sw = sweep.stats();
    assert_eq!(sw.sub_solves, 4);
    assert_eq!(sw.sub_cache_hits, 2);
    let snap = collector.snapshot();
    assert_eq!(snap.counter("sweep.sub_solves"), sw.sub_solves as u64);
    assert_eq!(
        snap.counter("sweep.sub_cache_hits"),
        sw.sub_cache_hits as u64
    );
}

/// The parallel hierarchy path is observable and, like every other
/// instrumented path, observation-free in its numerics: a no-op recorder
/// leaves the 4-worker solve bit-identical to the bare one, and a real
/// collector picks up the worker-pool counters plus the batched
/// log-sum-exp kernel span from the convolution hot path.
#[test]
fn parallel_hierarchy_metrics_land_and_stay_bit_identical() {
    let _guard = lock();
    let tier = |name: &str, cpu: f64, disk: f64| {
        NetworkNode::from(Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-cpu"), 4, 1.0, cpu).into(),
                Station::queueing(&format!("{name}-disk"), 1, 1.0, disk).into(),
            ],
        ))
    };
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("lb", 1, 1.0, 0.002).into(),
            tier("app", 0.010, 0.004),
            tier("search", 0.012, 0.005),
            tier("db", 0.016, 0.007),
        ],
        0.5,
    )
    .expect("hierarchical model");
    let opts = AggregationOptions::exact().parallelism(4);

    let bare = HierarchicalSolver::with_options(net.clone(), opts)
        .solve(50)
        .expect("uninstrumented parallel solve");
    let noop = {
        let _scope = obsv::scoped(Arc::new(obsv::NoopRecorder));
        HierarchicalSolver::with_options(net.clone(), opts)
            .solve(50)
            .expect("noop parallel solve")
    };
    assert_eq!(bare, noop);

    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());
    let collected = HierarchicalSolver::with_options(net, opts)
        .solve(50)
        .expect("collected parallel solve");
    assert_eq!(bare, collected);

    let snap = collector.snapshot();
    // Three stale subsystems fan out together at least once.
    assert!(
        snap.counter("hierarchy.parallel.sub_solves") >= 3,
        "only {} parallel sub-solves recorded",
        snap.counter("hierarchy.parallel.sub_solves")
    );
    assert!(
        snap.counter("hierarchy.parallel.queue_wait_ns") > 0,
        "pool wait time is accounted"
    );
    assert!(
        snap.spans_named("kernel.lse.batch") > 0,
        "the batched kernel opens its span on the convolution hot path"
    );
}

/// Both multiclass backends are observable (path-step counters, slab
/// accounting, the MoM precompute span) and — like every other solver —
/// recorders observe without perturbing a single bit.
#[test]
fn multiclass_metrics_land_in_collector_snapshot() {
    let _guard = lock();
    let workload = Workload::new(
        vec!["cpu".into(), "disk".into()],
        vec![
            StationKind::Queueing { servers: 2 },
            StationKind::Queueing { servers: 1 },
        ],
        vec![
            ClassSpec {
                name: "heavy".into(),
                population: 8,
                think_time: 1.0,
                demands: vec![0.02, 0.03],
            },
            ClassSpec {
                name: "light".into(),
                population: 4,
                think_time: 0.2,
                demands: vec![0.008, 0.004],
            },
        ],
    )
    .expect("workload");
    let total = workload.total_population() as u64;
    let lattice = MulticlassMvaSolver::new(workload.clone());
    let mom = MomSolver::new(workload);

    // Bit-identity: a no-op recorder and a collector both leave every f64
    // of both backends untouched.
    let bare_lat = lattice.solve_classes().expect("bare lattice");
    let bare_mom = mom.solve_classes().expect("bare mom");
    {
        let _scope = obsv::scoped(Arc::new(obsv::NoopRecorder));
        assert_eq!(bare_lat, lattice.solve_classes().expect("noop lattice"));
        assert_eq!(bare_mom, mom.solve_classes().expect("noop mom"));
    }

    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());
    assert_eq!(
        bare_lat,
        lattice.solve_classes().expect("collected lattice")
    );
    assert_eq!(bare_mom, mom.solve_classes().expect("collected mom"));

    let snap = collector.snapshot();
    // Each backend walked the full path once.
    assert_eq!(snap.counter("multiclass.steps"), 2 * total);
    assert_eq!(snap.counter("solver.steps"), 2 * total);
    assert_eq!(snap.spans_named("multiclass.step"), 2 * total as usize);
    // The carried workspace filled every lattice point except the origin
    // exactly once across its walk: (8+1)·(4+1) − 1 slab points.
    assert_eq!(snap.counter("multiclass.slab_points"), 9 * 5 - 1);
    // The MoM precompute pass ran once and accounts its recurrence work.
    assert_eq!(snap.spans_named("mom.precompute"), 1);
    assert!(
        snap.counter("mom.iterations") >= 9 * 5,
        "only {} mom iterations recorded",
        snap.counter("mom.iterations")
    );
}

/// Streamed queries report which stop condition fired and how many steps
/// the early exit saved, straight from the collector.
#[test]
fn stop_conditions_are_counted_by_name() {
    let _guard = lock();
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());

    let app = vins::model();
    let solver = mvasd_suite::queueing::mva::MultiserverMvaSolver::new(
        app.closed_network_at(600.0).unwrap(),
    );
    let mut iter = solver.start().expect("iterator");
    let outcome = run_until(
        iter.as_mut(),
        &[StopCondition::BottleneckSaturation { utilization: 0.9 }],
        600,
    )
    .expect("streamed query");

    let snap = collector.snapshot();
    assert_eq!(snap.counter("run_until.calls"), 1);
    assert_eq!(snap.counter("run_until.steps"), outcome.steps as u64);
    assert_eq!(
        snap.counter(outcome.reason.metric_name()),
        1,
        "the fired condition is counted under its own name"
    );
    assert_eq!(
        snap.counter("run_until.steps_saved"),
        (600 - outcome.steps) as u64
    );
    assert_eq!(snap.spans_named("run_until"), 1);
    // Early exit means the saturation condition fired before the cap.
    assert_eq!(outcome.reason.metric_name(), "stop.bottleneck_saturation");
    assert!(outcome.steps < 600);
}

/// Tentpole acceptance: with no recorder installed, a health probe is a
/// stateless no-op — it accumulates nothing, flushes nothing, and the
/// instrumented solvers stay bit-identical to the bare ones (the existing
/// bit-identity tests above now cover the probe-bearing hot paths too).
#[test]
fn health_probes_are_inert_when_disabled() {
    let _guard = lock();
    assert!(!obsv::enabled(), "no recorder may leak into this test");
    let mut probe = obsv::HealthProbe::new("test.disabled");
    probe.watch(42.0);
    probe.watch(f64::NAN);
    probe.count_clamp();
    probe.count_underflow();
    assert_eq!(probe.envelope(), None, "disabled probes accumulate nothing");

    // A solve that crosses every probe-bearing hot path while disabled
    // must leave no trace once a collector *is* installed afterwards.
    let solver = vins_solver();
    solver.solve(120).expect("disabled solve");
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());
    drop(probe); // Drop flushes — but there is nothing buffered.
    let snap = collector.snapshot();
    assert_eq!(snap.counters.len(), 0, "no stale health state leaked");
    assert_eq!(snap.gauges.len(), 0);
}

/// Tentpole acceptance: a seeded instrumented run distills into a
/// [`obsv::HealthReport`] with a nonzero log-sum-exp dynamic range, zero
/// NaN-poison trips, and a populated Schweitzer residual trace — and the
/// report survives its JSON round trip bit for bit.
#[test]
fn seeded_run_produces_clean_health_report() {
    let _guard = lock();
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());

    let app = vins::model();
    // Multiserver MVA at a real demand point drives the log-domain
    // convolution workspace (the lse probe's home).
    let solver = mvasd_suite::queueing::mva::MultiserverMvaSolver::new(
        app.closed_network_at(1500.0).expect("calibrated network"),
    );
    solver.solve(300).expect("instrumented multiserver solve");
    // A Schweitzer solve records its fixed-point residual digits.
    let schweitzer = mvasd_suite::queueing::mva::SchweitzerSolver::new(
        app.closed_network_at(1500.0).expect("calibrated network"),
    );
    schweitzer
        .solve(300)
        .expect("instrumented schweitzer solve");
    // Both multiclass backends plus the explicit divergence gauge.
    let workload = Workload::new(
        vec!["cpu".into(), "disk".into()],
        vec![
            StationKind::Queueing { servers: 2 },
            StationKind::Queueing { servers: 1 },
        ],
        vec![
            ClassSpec {
                name: "heavy".into(),
                population: 6,
                think_time: 1.0,
                demands: vec![0.02, 0.03],
            },
            ClassSpec {
                name: "light".into(),
                population: 4,
                think_time: 0.2,
                demands: vec![0.008, 0.004],
            },
        ],
    )
    .expect("workload");
    let lat = MulticlassMvaSolver::new(workload.clone())
        .solve_classes()
        .expect("lattice solve");
    let mom = MomSolver::new(workload).solve_classes().expect("mom solve");
    let divergence = mvasd_suite::queueing::mva::backend_divergence(&lat, &mom);
    assert!(divergence.is_finite());

    let report = obsv::HealthReport::from_snapshot(&collector.snapshot());
    assert!(report.samples > 0, "probes saw values: {report:?}");
    assert_eq!(report.nan_poison_trips, 0, "no NaN poison on a clean run");
    let lse_range = report.lse_range.expect("conv workspace ran");
    assert!(lse_range > 0.0, "nonzero log-sum-exp dynamic range");
    assert!(
        report
            .schweitzer_residual_digits_min
            .expect("schweitzer ran")
            > 0.0,
        "the fixed point converged to at least some digits"
    );
    assert!(report.mom_lng_range.is_some(), "mom lattice conditioning");
    let gauge = report
        .lattice_mom_divergence
        .expect("divergence gauge recorded");
    assert_eq!(gauge, divergence, "gauge mirrors the returned value");

    // JSON round trip is exact: `obsv::json::number` prints shortest
    // round-trip representations.
    let round_tripped = obsv::HealthReport::from_json(&report.to_json()).expect("report re-parses");
    assert_eq!(report, round_tripped);
}

/// Satellite: two snapshots of the same collector diff cleanly — the delta
/// of a run against itself is all zeros, and new work shows up as exactly
/// its own counts.
#[test]
fn snapshot_diff_isolates_incremental_work() {
    let _guard = lock();
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());
    let solver = vins_solver();

    solver.solve(50).expect("first solve");
    let before = collector.snapshot();
    // Round trip the baseline through JSONL, as `obsv_report --diff` does.
    let before = obsv::Snapshot::from_jsonl(&before.to_jsonl()).expect("baseline re-parses");
    assert_eq!(before.diff(&before).counter("solver.steps"), 0);

    solver.solve(30).expect("second solve");
    let delta = collector.snapshot().diff(&before);
    assert_eq!(delta.counter("solver.steps"), 30, "only the new work");
    assert_eq!(delta.spans_named("mvasd.step"), 0, "diffs carry no spans");
}

/// The end-to-end trace survives a round trip through the sink and the
/// bundled parser, and the span hierarchy keeps its depth information.
#[test]
fn chrome_trace_round_trips_through_bundled_parser() {
    let _guard = lock();
    let collector = Arc::new(obsv::Collector::new());
    let _scope = obsv::scoped(collector.clone());

    let solver = vins_solver();
    solver.solve(50).expect("traced solve");

    let snap = collector.snapshot();
    assert_eq!(snap.spans_named("mvasd.step"), 50);
    let trace = snap.to_chrome_trace();
    let doc = obsv::json::parse(&trace).expect("sink output is valid JSON");
    match doc {
        obsv::json::Json::Object(obj) => {
            let events = match obj.get("traceEvents") {
                Some(obsv::json::Json::Array(events)) => events,
                other => panic!("expected traceEvents array, got {other:?}"),
            };
            // 50 step spans plus counter events at the end of the trace.
            assert!(events.len() > 50, "only {} events", events.len());
        }
        other => panic!("expected object, got {other:?}"),
    }
}
