//! Deterministic interleaving explorer: end-to-end schedule-independence.
//!
//! `numerics::pool::explore_schedules` forces every completion order of a
//! ≤4-task fan-out (4! = 24 schedules). These tests drive the two real
//! plan/commit executions in the suite — the scenario-sweep model-group
//! fan-out and the hierarchical solver's parallel sub-solves — under every
//! schedule and assert the published results are bit-identical on each
//! one. Lint rule L9 is the static half of this contract; this file is
//! the dynamic witness that the plan/commit protocol actually delivers
//! schedule independence, not just that the code looks like it should.

use mvasd_suite::core::profile::{DemandAxis, DemandSamples, InterpolationKind};
use mvasd_suite::core::sweep::{Scenario, ScenarioSweep, SweepReport};
use mvasd_suite::numerics::pool;
use mvasd_suite::queueing::hierarchy::{AggregationOptions, HierarchicalNetwork, Subsystem};
use mvasd_suite::queueing::network::Station;
use mvasd_suite::testbed::apps::{vins, AppModel};

fn samples_of(app: &AppModel, levels: &[u64]) -> DemandSamples {
    let levels: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    DemandSamples {
        station_names: app.station_names(),
        server_counts: app.server_counts(),
        think_time: app.think_time,
        levels: levels.clone(),
        demands: (0..app.stations.len())
            .map(|k| {
                levels
                    .iter()
                    .map(|&l| app.stations[k].curve.at(l))
                    .collect()
            })
            .collect(),
    }
}

fn four_scenarios() -> Vec<Scenario> {
    // Four distinct demand scalings => four distinct model groups, so the
    // sweep's plan phase dispatches exactly four pool tasks.
    vec![
        Scenario::new("baseline"),
        Scenario::new("tuned").scale_demands(0.9),
        Scenario::new("heavy").scale_demands(1.15),
        Scenario::new("light").scale_demands(0.75),
    ]
}

fn assert_reports_bitwise_equal(sched: &[usize], got: &SweepReport, want: &SweepReport) {
    assert_eq!(got.results.len(), want.results.len(), "schedule {sched:?}");
    assert_eq!(
        got.steps_computed, want.steps_computed,
        "schedule {sched:?}"
    );
    assert_eq!(
        got.steps_demanded, want.steps_demanded,
        "schedule {sched:?}"
    );
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.label, w.label, "schedule {sched:?}");
        assert_eq!(g.reason, w.reason, "schedule {sched:?}");
        assert_eq!(
            g.solution.points.len(),
            w.solution.points.len(),
            "schedule {sched:?} label {}",
            g.label
        );
        for (a, b) in g.solution.points.iter().zip(&w.solution.points) {
            assert_eq!(
                a.throughput.to_bits(),
                b.throughput.to_bits(),
                "schedule {sched:?} label {} n={}",
                g.label,
                a.n
            );
            assert_eq!(
                a.response.to_bits(),
                b.response.to_bits(),
                "schedule {sched:?} label {} n={}",
                g.label,
                a.n
            );
            for (x, y) in a.stations.iter().zip(&b.stations) {
                assert_eq!(
                    x.queue.to_bits(),
                    y.queue.to_bits(),
                    "schedule {sched:?} label {} n={}",
                    g.label,
                    a.n
                );
            }
        }
    }
}

#[test]
fn sweep_fan_out_is_schedule_independent() {
    let app = vins::model();
    let samples = samples_of(&app, &vins::STANDARD_LEVELS);
    let scenarios = four_scenarios();

    // Serial reference: no pool involvement at all.
    let reference = ScenarioSweep::new(samples.clone())
        .interpolation(InterpolationKind::CubicNotAKnot)
        .axis(DemandAxis::Concurrency)
        .default_cap(25)
        .run(&scenarios)
        .expect("serial sweep solves");

    let runs = pool::explore_schedules(4, |_sched| {
        // A fresh sweep per schedule so the group cache starts cold and
        // every plan/commit round actually runs under the forced order.
        ScenarioSweep::new(samples.clone())
            .interpolation(InterpolationKind::CubicNotAKnot)
            .axis(DemandAxis::Concurrency)
            .default_cap(25)
            .parallelism(4)
            .run(&scenarios)
            .expect("parallel sweep solves")
    });
    assert_eq!(runs.len(), 24, "4 tasks => 4! exhaustive schedules");
    for (sched, report) in &runs {
        assert_reports_bitwise_equal(sched, report, &reference);
    }
}

#[test]
fn hierarchy_cache_is_bit_identical_on_every_schedule() {
    // Three distinct subsystems plus a front end: the parallel plan phase
    // extends three stale profiles per growth step. The shared
    // ProfileCache snapshot must come out bitwise equal no matter which
    // worker's commit lands first.
    let tier = |name: &str, d: f64, z: f64| {
        Subsystem::new(
            name,
            vec![
                Station::queueing(&format!("{name}-app"), 2, 1.0, d).into(),
                Station::queueing(&format!("{name}-db"), 1, 1.0, z).into(),
            ],
        )
    };
    let net = HierarchicalNetwork::new(
        vec![
            Station::queueing("fe", 1, 1.0, 0.002).into(),
            tier("a", 0.010, 0.004).into(),
            tier("b", 0.013, 0.005).into(),
            tier("c", 0.017, 0.006).into(),
        ],
        0.4,
    )
    .expect("network builds");

    let mut serial_sweep =
        ScenarioSweep::over_hierarchy(net.clone(), AggregationOptions::exact()).default_cap(25);
    let serial = serial_sweep
        .run(&four_scenarios())
        .expect("serial hierarchy sweep solves");
    let reference = serial_sweep
        .profile_cache()
        .expect("hierarchical sweeps expose their cache")
        .profiles();
    assert!(!reference.is_empty(), "sweep populated the profile cache");

    let runs = pool::explore_schedules(3, |_sched| {
        let mut sweep =
            ScenarioSweep::over_hierarchy(net.clone(), AggregationOptions::exact().parallelism(3))
                .default_cap(25);
        let report = sweep
            .run(&four_scenarios())
            .expect("parallel hierarchy sweep solves");
        let profiles = sweep
            .profile_cache()
            .expect("hierarchical sweeps expose their cache")
            .profiles();
        (report, profiles)
    });
    assert_eq!(runs.len(), 6, "3 tasks => 3! exhaustive schedules");
    for (sched, (report, profiles)) in &runs {
        assert_reports_bitwise_equal(sched, report, &serial);
        assert_eq!(profiles.len(), reference.len(), "schedule {sched:?}");
        for ((k, prof, rows), (rk, rprof, rrows)) in profiles.iter().zip(&reference) {
            assert_eq!(k, rk, "schedule {sched:?}");
            assert_eq!(prof.len(), rprof.len(), "schedule {sched:?} key {k:?}");
            for (a, b) in prof.iter().zip(rprof) {
                assert_eq!(a.to_bits(), b.to_bits(), "schedule {sched:?} key {k:?}");
            }
            assert_eq!(rows.len(), rrows.len(), "schedule {sched:?} key {k:?}");
            for (a, b) in rows.iter().zip(rrows) {
                assert_eq!(a.to_bits(), b.to_bits(), "schedule {sched:?} key {k:?}");
            }
        }
    }
}
