//! Cross-crate validation: the analytic solvers, the closed forms, and the
//! discrete-event simulator must agree on shared models — three
//! independently built components triangulating the same ground truth.

use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};
use mvasd_suite::core::solver::{MvasdSchweitzerSolver, MvasdSingleServerSolver, MvasdSolver};
use mvasd_suite::numerics::erlang::{machine_repair, mmc};
use mvasd_suite::queueing::hierarchy::{
    HierarchicalNetwork, HierarchicalSolver, NetworkNode, Subsystem,
};
use mvasd_suite::queueing::mva::{
    exact_mva, load_dependent_mva, multiclass_mva, multiserver_mva, schweitzer_mva, ClassSpec,
    ClosedSolver, ConvolutionSolver, ExactMvaSolver, LdStation, LoadDependentSolver, MomSolver,
    MultiserverMvaSolver, RateFunction, SchweitzerOptions, SchweitzerSolver,
};
use mvasd_suite::queueing::network::{ClosedNetwork, Station, StationKind};
use mvasd_suite::queueing::open::solve_open;
use mvasd_suite::simnet::{Distribution, SimConfig, SimNetwork, SimStation, Simulation};

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn simulator_vs_mva_on_three_tier_network() {
    // A miniature 3-tier model; exponential everything keeps it
    // product-form, so DES and exact MVA must agree within sampling noise.
    let demands = [(16usize, 0.030), (1, 0.008), (16, 0.020), (1, 0.012)];
    let z = 1.0;
    let n = 60usize;

    let net = ClosedNetwork::new(
        demands
            .iter()
            .enumerate()
            .map(|(i, &(c, d))| Station::queueing(&format!("s{i}"), c, 1.0, d))
            .collect(),
        z,
    )
    .unwrap();
    let analytic = multiserver_mva(&net, n).unwrap();

    let sim_net = SimNetwork::new(
        demands
            .iter()
            .enumerate()
            .map(|(i, &(c, d))| SimStation::queueing(&format!("s{i}"), c, d))
            .collect(),
        Distribution::Exponential { mean: z },
    )
    .unwrap();
    let sim = Simulation::new(
        sim_net,
        SimConfig {
            customers: n,
            horizon: 2500.0,
            warmup: 500.0,
            seed: 99,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();

    let a = analytic.last();
    assert!(
        rel(sim.system.throughput, a.throughput) < 0.03,
        "X: sim {} vs mva {}",
        sim.system.throughput,
        a.throughput
    );
    assert!(
        rel(sim.system.mean_response, a.response) < 0.06,
        "R: sim {} vs mva {}",
        sim.system.mean_response,
        a.response
    );
    for k in 0..demands.len() {
        assert!(
            (sim.stations[k].utilization - a.stations[k].utilization).abs() < 0.03,
            "station {k} utilization"
        );
    }
}

#[test]
fn four_solvers_one_network() {
    // exact (single-server net), multiserver, load-dependent, Schweitzer:
    // all four on the same single-server network must coincide (Schweitzer
    // within its approximation band).
    let net = ClosedNetwork::new(
        vec![
            Station::queueing("a", 1, 1.0, 0.01),
            Station::queueing("b", 1, 1.0, 0.016),
        ],
        0.5,
    )
    .unwrap();
    let n = 120;
    let e = exact_mva(&net, n).unwrap();
    let m = multiserver_mva(&net, n).unwrap();
    let ld = load_dependent_mva(
        &[
            LdStation::new("a", 0.01, RateFunction::SingleServer),
            LdStation::new("b", 0.016, RateFunction::SingleServer),
        ],
        0.5,
        n,
    )
    .unwrap();
    let s = schweitzer_mva(&net, n, SchweitzerOptions::default()).unwrap();
    for i in 1..=n {
        let xe = e.at(i).unwrap().throughput;
        assert!(
            rel(m.at(i).unwrap().throughput, xe) < 1e-8,
            "multiserver at {i}"
        );
        assert!(
            rel(ld.at(i).unwrap().throughput, xe) < 1e-8,
            "load-dependent at {i}"
        );
        // Schweitzer's error peaks around the knee (~6 % textbook band).
        assert!(
            rel(s.at(i).unwrap().throughput, xe) < 0.06,
            "schweitzer at {i}"
        );
    }
}

#[test]
fn closed_network_approaches_open_network_at_light_load() {
    // With a huge think time and matching arrival rate, the closed model's
    // per-interaction response approaches the open (Jackson) response.
    let stations = vec![
        Station::queueing("cpu", 4, 1.0, 0.02),
        Station::queueing("disk", 1, 1.0, 0.01),
    ];
    let net = ClosedNetwork::new(stations, 100.0).unwrap();
    let n = 500; // lambda ≈ N/(R+Z) ≈ 5/s, far below the 100/s disk ceiling
    let closed = multiserver_mva(&net, n).unwrap();
    let lambda = closed.last().throughput;
    let open = solve_open(&net, lambda).unwrap();
    assert!(
        rel(closed.last().response, open.response) < 0.02,
        "closed {} vs open {}",
        closed.last().response,
        open.response
    );
}

#[test]
fn analytic_solvers_vs_erlang_closed_forms() {
    // Machine repair (closed) and M/M/c (open) pin both solver families.
    let (c, s, z) = (6usize, 0.3f64, 2.0f64);
    let net = ClosedNetwork::new(vec![Station::queueing("st", c, 1.0, s)], z).unwrap();
    let sol = multiserver_mva(&net, 100).unwrap();
    for n in [1usize, 5, 20, 50, 100] {
        let (xe, qe) = machine_repair(n, c, s, z).unwrap();
        assert!(rel(sol.at(n).unwrap().throughput, xe) < 1e-8, "X at {n}");
        assert!(
            (sol.at(n).unwrap().stations[0].queue - qe).abs() < 1e-5 * qe.max(1.0),
            "Q at {n}"
        );
    }

    let open_net = ClosedNetwork::new(vec![Station::queueing("st", 3, 1.0, 0.6)], 0.0).unwrap();
    let m = mmc(3, 4.0, 1.0 / 0.6).unwrap();
    let sol = solve_open(&open_net, 4.0).unwrap();
    assert!(rel(sol.response, m.sojourn) < 1e-9);
}

#[test]
fn every_closed_solver_agrees_with_exact_mva_through_the_trait() {
    // The unifying contract of the refactor: on a single-server product-form
    // network every solver in the workspace is reachable through
    // `ClosedSolver`, and the exact family reproduces exact MVA to 1e-9.
    // Approximate solvers get their documented bands; the DES estimator is
    // exercised separately (statistical) below.
    let net = ClosedNetwork::new(
        vec![
            Station::queueing("a", 1, 1.0, 0.01),
            Station::queueing("b", 1, 1.0, 0.016),
        ],
        0.5,
    )
    .unwrap();
    let n = 80usize;
    let reference = ExactMvaSolver::new(net.clone()).solve(n).unwrap();

    // A constant demand profile makes MVASD collapse onto classic MVA, so
    // the core-layer solvers join the exact family on this model.
    let levels = vec![1.0, 40.0, 80.0];
    let samples = DemandSamples {
        station_names: vec!["a".into(), "b".into()],
        server_counts: vec![1, 1],
        think_time: 0.5,
        levels: levels.clone(),
        demands: vec![vec![0.01; levels.len()], vec![0.016; levels.len()]],
    };
    let profile = ServiceDemandProfile::from_samples(
        &samples,
        InterpolationKind::CubicNotAKnot,
        DemandAxis::Concurrency,
    )
    .unwrap();

    // The same model expressed hierarchically: station "b" wrapped in a
    // subsystem, aggregated through a Norton flow-equivalent server. Its
    // flat projection is identical, so it joins the exact family.
    let hier = HierarchicalNetwork::new(
        vec![
            Station::queueing("a", 1, 1.0, 0.01).into(),
            Subsystem::new("sub", vec![Station::queueing("b", 1, 1.0, 0.016).into()]).into(),
        ],
        0.5,
    )
    .unwrap();

    let exact_family: Vec<Box<dyn ClosedSolver>> = vec![
        Box::new(ExactMvaSolver::new(net.clone())),
        Box::new(MultiserverMvaSolver::new(net.clone())),
        Box::new(LoadDependentSolver::from_network(&net)),
        Box::new(ConvolutionSolver::new(net.clone())),
        Box::new(HierarchicalSolver::new(hier)),
        Box::new(MvasdSolver::new(profile.clone())),
        Box::new(MvasdSingleServerSolver::new(profile.clone())),
    ];
    for solver in &exact_family {
        let sol = solver.solve(n).unwrap();
        for i in 1..=n {
            let r = reference.at(i).unwrap();
            let p = sol.at(i).unwrap();
            assert!(
                rel(p.throughput, r.throughput) < 1e-9,
                "[{}] X at {i}: {} vs {}",
                solver.name(),
                p.throughput,
                r.throughput
            );
            assert!(
                rel(p.cycle_time, r.cycle_time) < 1e-9,
                "[{}] C at {i}",
                solver.name()
            );
        }
    }

    // Approximate family: fixed-point AMVA, documented ~6 % band near the knee.
    let approximate: Vec<Box<dyn ClosedSolver>> = vec![
        Box::new(SchweitzerSolver::new(net.clone())),
        Box::new(MvasdSchweitzerSolver::new(profile)),
    ];
    for solver in &approximate {
        let sol = solver.solve(n).unwrap();
        for i in 1..=n {
            assert!(
                rel(
                    sol.at(i).unwrap().throughput,
                    reference.at(i).unwrap().throughput
                ) < 0.06,
                "[{}] X at {i}",
                solver.name()
            );
        }
    }
}

#[test]
fn method_of_moments_matches_the_lattice_oracle_on_a_population_grid() {
    // The two exact multiclass backends share no arithmetic: the lattice
    // oracle walks Arrival-Theorem faces in the linear domain, the Method
    // of Moments runs normalizing-constant recurrences in the log domain.
    // Across a grid of class counts, station mixes (single-server,
    // multi-server via Seidmann, delay), think times (including 0), and
    // small populations, every reported quantity must agree to 1e-8.
    use mvasd_suite::queueing::mva::Workload;

    let station_sets: Vec<(Vec<&str>, Vec<StationKind>)> = vec![
        (
            vec!["cpu", "disk"],
            vec![
                StationKind::Queueing { servers: 1 },
                StationKind::Queueing { servers: 1 },
            ],
        ),
        (
            vec!["cpu", "disk", "lan"],
            vec![
                StationKind::Queueing { servers: 4 },
                StationKind::Queueing { servers: 1 },
                StationKind::Delay,
            ],
        ),
        (
            vec!["cpu", "lan"],
            vec![StationKind::Queueing { servers: 2 }, StationKind::Delay],
        ),
    ];
    // Per-class (population-scale, think-time, demand-scale) templates;
    // the grid takes 1-, 2-, and 3-class prefixes of this list.
    let class_templates = [(1.0f64, 1.0f64), (0.5, 0.0), (2.0, 0.3)];
    let base_demands = [0.02, 0.012, 0.004];

    let mut cases = 0usize;
    for (names, kinds) in &station_sets {
        for nclasses in 1..=class_templates.len() {
            for &pop_base in &[2usize, 5] {
                let classes: Vec<ClassSpec> = class_templates[..nclasses]
                    .iter()
                    .enumerate()
                    .map(|(c, &(dscale, think))| ClassSpec {
                        name: format!("c{c}"),
                        population: pop_base + c,
                        think_time: think,
                        demands: base_demands[..names.len()]
                            .iter()
                            .map(|d| d * dscale * (1.0 + 0.1 * c as f64))
                            .collect(),
                    })
                    .collect();
                let oracle = multiclass_mva(&classes, kinds).unwrap();
                let workload = Workload::new(
                    names.iter().map(|s| s.to_string()).collect(),
                    kinds.clone(),
                    classes,
                )
                .unwrap();
                let mom = MomSolver::new(workload).solve_classes().unwrap();

                for (a, b) in oracle.classes.iter().zip(&mom.classes) {
                    assert!(
                        rel(b.throughput, a.throughput) < 1e-8,
                        "X[{}]: {} vs {}",
                        a.name,
                        b.throughput,
                        a.throughput
                    );
                    assert!(
                        (b.response - a.response).abs() < 1e-8 * a.response.abs().max(1.0),
                        "R[{}]: {} vs {}",
                        a.name,
                        b.response,
                        a.response
                    );
                }
                for (k, (a, b)) in oracle
                    .station_queues
                    .iter()
                    .zip(&mom.station_queues)
                    .enumerate()
                {
                    assert!(
                        (b - a).abs() < 1e-8 * a.abs().max(1.0),
                        "Q[{k}]: {b} vs {a}"
                    );
                }
                for (k, (a, b)) in oracle
                    .station_utilizations
                    .iter()
                    .zip(&mom.station_utilizations)
                    .enumerate()
                {
                    assert!((b - a).abs() < 1e-8, "U[{k}]: {b} vs {a}");
                }
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 18, "the whole grid ran");
}

#[test]
fn sim_solver_joins_the_trait_family_statistically() {
    // The DES estimator behind the same `ClosedSolver` trait, held to a
    // sampling band rather than the analytic 1e-9.
    use mvasd_suite::testbed::solver::SimSolver;

    let net = ClosedNetwork::new(vec![Station::queueing("s", 1, 1.0, 0.02)], 0.5).unwrap();
    let n = 12usize;
    let reference = ExactMvaSolver::new(net).solve(n).unwrap();

    let sim_net = SimNetwork::new(
        vec![SimStation::queueing("s", 1, 0.02)],
        Distribution::Exponential { mean: 0.5 },
    )
    .unwrap();
    let solver: Box<dyn ClosedSolver> = Box::new(SimSolver::new(
        sim_net,
        SimConfig {
            horizon: 6000.0,
            warmup: 600.0,
            seed: 7,
            ..SimConfig::default()
        },
    ));
    assert_eq!(solver.name(), "simnet-des");
    let sol = solver.solve(n).unwrap();
    for i in 1..=n {
        assert!(
            rel(
                sol.at(i).unwrap().throughput,
                reference.at(i).unwrap().throughput
            ) < 0.06,
            "DES X at {i}: {} vs {}",
            sol.at(i).unwrap().throughput,
            reference.at(i).unwrap().throughput
        );
    }
}

/// One VINS tier: its name plus four (station, servers, demand) members.
type TierSpec = (&'static str, [(&'static str, usize, f64); 4]);

#[test]
fn hierarchical_vins_vs_simulator() {
    // The paper's twelve-station VINS shape, expressed as three tier
    // subsystems and solved through Norton aggregation, must agree with
    // the discrete-event simulator run on the *flat* network — the two
    // estimates triangulate through entirely different machinery (FES
    // substitution + convolution vs event-by-event sampling).
    let tiers: [TierSpec; 3] = [
        (
            "load",
            [
                ("cpu", 16, 0.004),
                ("disk", 1, 0.0085),
                ("tx", 1, 0.0012),
                ("rx", 1, 0.0018),
            ],
        ),
        (
            "app",
            [
                ("cpu", 16, 0.012),
                ("disk", 1, 0.0022),
                ("tx", 1, 0.0015),
                ("rx", 1, 0.0015),
            ],
        ),
        (
            "db",
            [
                ("cpu", 16, 0.055),
                ("disk", 1, 0.0098),
                ("tx", 1, 0.0014),
                ("rx", 1, 0.0012),
            ],
        ),
    ];
    let z = 1.0;
    let n = 60usize;

    let nodes: Vec<NetworkNode> = tiers
        .iter()
        .map(|(tier, members)| {
            Subsystem::new(
                tier,
                members
                    .iter()
                    .map(|&(part, c, d)| {
                        Station::queueing(&format!("{tier}-{part}"), c, 1.0, d).into()
                    })
                    .collect(),
            )
            .into()
        })
        .collect();
    let net = HierarchicalNetwork::new(nodes, z).unwrap();
    let aggregated = HierarchicalSolver::new(net.clone()).solve(n).unwrap();

    let sim_net = SimNetwork::new(
        net.flatten()
            .stations()
            .iter()
            .map(|s| SimStation::queueing(&s.name, s.kind.server_count().unwrap(), s.service_time))
            .collect(),
        Distribution::Exponential { mean: z },
    )
    .unwrap();
    let sim = Simulation::new(
        sim_net,
        SimConfig {
            customers: n,
            horizon: 2500.0,
            warmup: 500.0,
            seed: 99,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();

    let a = aggregated.last();
    assert!(
        rel(sim.system.throughput, a.throughput) < 0.03,
        "X: sim {} vs hierarchical {}",
        sim.system.throughput,
        a.throughput
    );
    assert!(
        rel(sim.system.mean_response, a.response) < 0.06,
        "R: sim {} vs hierarchical {}",
        sim.system.mean_response,
        a.response
    );
    for (k, (ss, sa)) in sim.stations.iter().zip(a.stations.iter()).enumerate() {
        assert!(
            (ss.utilization - sa.utilization).abs() < 0.03,
            "station {k} utilization: sim {} vs hierarchical {}",
            ss.utilization,
            sa.utilization
        );
    }
}

#[test]
fn simulator_service_distribution_insensitivity_check() {
    // Product-form (exponential) vs low-variance (Erlang-4) service: FCFS
    // multi-server queueing is *not* insensitive, so response should
    // differ measurably at high utilization — a sanity check that the
    // simulator really models service variance (and hence that matching
    // MVA with exponential service is meaningful, not vacuous).
    let mk = |dist: Distribution| {
        let st = SimStation::queueing("s", 1, 0.02).with_service(dist);
        let net = SimNetwork::new(vec![st], Distribution::Exponential { mean: 0.2 }).unwrap();
        Simulation::new(
            net,
            SimConfig {
                customers: 12,
                horizon: 3000.0,
                warmup: 300.0,
                seed: 5,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let exp = mk(Distribution::Exponential { mean: 0.02 });
    let erl = mk(Distribution::Erlang { k: 4, mean: 0.02 });
    // Less service variance => shorter queueing delay.
    assert!(
        erl.system.mean_response < exp.system.mean_response,
        "erlang {} vs exp {}",
        erl.system.mean_response,
        exp.system.mean_response
    );
}
