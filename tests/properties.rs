//! Property-based tests (proptest) over randomly generated networks,
//! demand curves, and sample sets: the invariants every solver output must
//! satisfy regardless of parameters.

use proptest::prelude::*;

use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};
use mvasd_suite::numerics::chebyshev::chebyshev_levels;
use mvasd_suite::numerics::interp::{
    BoundaryCondition, CubicSpline, Extrapolation, Interpolant, PchipInterp,
};
use mvasd_suite::queueing::bounds::{response_bounds, throughput_bounds};
use mvasd_suite::queueing::mva::multiserver_mva;
use mvasd_suite::queueing::network::{ClosedNetwork, Station};

/// A random small closed network: 1–5 stations, 1/2/4/8/16 servers each,
/// demands in [1 ms, 100 ms], think time in [0, 2 s].
fn arb_network() -> impl Strategy<Value = ClosedNetwork> {
    let station = (prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)], 0.001f64..0.1);
    (proptest::collection::vec(station, 1..=5), 0.0f64..2.0).prop_map(|(specs, z)| {
        let stations = specs
            .into_iter()
            .enumerate()
            .map(|(i, (c, d))| Station::queueing(&format!("s{i}"), c, 1.0, d))
            .collect();
        ClosedNetwork::new(stations, z).expect("generated parameters are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mva_respects_all_operational_laws(net in arb_network(), n_max in 1usize..120) {
        let sol = multiserver_mva(&net, n_max).unwrap();
        let cap = net.max_throughput();
        let mut prev_x = 0.0;
        for p in &sol.points {
            // Little's law at the system level.
            prop_assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Bottleneck law.
            prop_assert!(p.throughput <= cap * (1.0 + 1e-9) + 1e-9);
            // Asymptotic bounds.
            let tb = throughput_bounds(&net, p.n);
            let rb = response_bounds(&net, p.n);
            prop_assert!(p.throughput <= tb.upper + 1e-6 + 1e-6 * tb.upper);
            prop_assert!(p.response >= rb.lower - 1e-6 - 1e-6 * rb.lower);
            // Monotone non-decreasing throughput for constant demands.
            prop_assert!(p.throughput >= prev_x - 1e-6 - 1e-6 * prev_x);
            prev_x = p.throughput;
            // Utilizations are proper fractions; population is conserved.
            let mut at_stations = 0.0;
            for sp in &p.stations {
                prop_assert!(sp.utilization <= 1.0 + 1e-9);
                prop_assert!(sp.queue >= -1e-9);
                at_stations += sp.queue;
            }
            let thinking = p.throughput * net.think_time();
            prop_assert!((at_stations + thinking - p.n as f64).abs() < 1e-5 * p.n as f64);
        }
    }

    #[test]
    fn mvasd_invariants_with_falling_demands(
        base in 0.004f64..0.05,
        alpha in 0.0f64..0.4,
        servers in prop_oneof![Just(1usize), Just(4), Just(16)],
        n_max in 10usize..150,
    ) {
        // Demand falls from base·(1+alpha) to base across the sampled range.
        let levels = vec![1.0, 50.0, 150.0];
        let d = |n: f64| base * (1.0 + alpha * (-(n - 1.0) / 60.0).exp());
        let samples = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![servers],
            think_time: 1.0,
            levels: levels.clone(),
            demands: vec![levels.iter().map(|&l| d(l)).collect()],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples, InterpolationKind::CubicNotAKnot, DemandAxis::Concurrency,
        ).unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            // Little's law holds at every step even with varying demands.
            prop_assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Ceiling from the *minimum* demand over the curve (demand is
            // monotone falling, so min is the clamp value).
            let cap = servers as f64 / d(150.0);
            prop_assert!(p.throughput <= cap + 1e-6 + 1e-6 * cap, "X {} cap {}", p.throughput, cap);
            prop_assert!(p.stations[0].utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn cubic_spline_interpolates_and_clamps(
        knots in proptest::collection::vec((0.0f64..1000.0, 0.001f64..1.0), 3..10)
    ) {
        let mut pts = knots;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1.0);
        prop_assume!(pts.len() >= 3);
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot)
            .unwrap()
            .with_extrapolation(Extrapolation::Clamp);
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-6 * y.abs().max(1.0));
        }
        // eq. 14 clamping.
        prop_assert_eq!(s.eval(xs[0] - 100.0), ys[0]);
        prop_assert_eq!(s.eval(xs[xs.len()-1] + 100.0), ys[ys.len()-1]);
    }

    #[test]
    fn pchip_preserves_monotonicity(
        mut ys in proptest::collection::vec(0.001f64..1.0, 4..12)
    ) {
        ys.sort_by(|a, b| b.partial_cmp(a).unwrap()); // decreasing
        let xs: Vec<f64> = (0..ys.len()).map(|i| 1.0 + 10.0 * i as f64).collect();
        let p = PchipInterp::new(&xs, &ys).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..=300 {
            let x = 1.0 + (xs.len() as f64 - 1.0) * 10.0 * i as f64 / 300.0;
            let v = p.eval(x);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn chebyshev_levels_sorted_in_range(k in 1usize..12, a in 1.0f64..50.0, width in 10.0f64..500.0) {
        let b = a + width;
        let levels = chebyshev_levels(k, a, b);
        prop_assert!(!levels.is_empty());
        prop_assert!(levels.windows(2).all(|w| w[0] < w[1]));
        for &l in &levels {
            prop_assert!(l as f64 >= a.floor());
            prop_assert!(l as f64 <= b.ceil());
        }
    }
}
