//! Property-based tests over randomly generated networks, demand curves,
//! and sample sets: the invariants every solver output must satisfy
//! regardless of parameters.
//!
//! Runs on the in-house deterministic harness (`mvasd_numerics::propcheck`).

use mvasd_suite::core::algorithm::mvasd;
use mvasd_suite::core::profile::{
    DemandAxis, DemandSamples, InterpolationKind, ServiceDemandProfile,
};
use mvasd_suite::numerics::chebyshev::chebyshev_levels;
use mvasd_suite::numerics::interp::{
    BoundaryCondition, CubicSpline, Extrapolation, Interpolant, PchipInterp,
};
use mvasd_suite::numerics::propcheck::{check, Config, Gen};
use mvasd_suite::queueing::bounds::{response_bounds, throughput_bounds};
use mvasd_suite::queueing::hierarchy::{
    HierarchicalNetwork, HierarchicalSolver, NetworkNode, Subsystem,
};
use mvasd_suite::queueing::mva::{
    multiserver_mva, ClassSpec, ClosedSolver, ExactMvaIter, MulticlassIter, MultiserverMvaSolver,
    SolverIter, Workload,
};
use mvasd_suite::queueing::network::{ClosedNetwork, Station, StationKind};

fn cfg() -> Config {
    Config::default().cases(48)
}

/// A random small closed network: 1–5 stations, 1/2/4/8/16 servers each,
/// demands in [1 ms, 100 ms], think time in [0, 2 s].
fn gen_network(g: &mut Gen) -> ClosedNetwork {
    let count = g.usize_in(1, 5);
    let stations = (0..count)
        .map(|i| {
            let c = *g.choose(&[1usize, 2, 4, 8, 16]);
            let d = g.f64_in(0.001, 0.1);
            Station::queueing(&format!("s{i}"), c, 1.0, d)
        })
        .collect();
    let z = g.f64_in(0.0, 2.0);
    ClosedNetwork::new(stations, z).expect("generated parameters are valid")
}

#[test]
fn mva_respects_all_operational_laws() {
    check("mva_respects_all_operational_laws", &cfg(), |g| {
        let net = gen_network(g);
        let n_max = g.usize_in(1, 119);
        let sol = multiserver_mva(&net, n_max).unwrap();
        let cap = net.max_throughput();
        let mut prev_x = 0.0;
        for p in &sol.points {
            // Little's law at the system level.
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Bottleneck law.
            assert!(p.throughput <= cap * (1.0 + 1e-9) + 1e-9);
            // Asymptotic bounds.
            let tb = throughput_bounds(&net, p.n);
            let rb = response_bounds(&net, p.n);
            assert!(p.throughput <= tb.upper + 1e-6 + 1e-6 * tb.upper);
            assert!(p.response >= rb.lower - 1e-6 - 1e-6 * rb.lower);
            // Monotone non-decreasing throughput for constant demands.
            assert!(p.throughput >= prev_x - 1e-6 - 1e-6 * prev_x);
            prev_x = p.throughput;
            // Utilizations are proper fractions; population is conserved.
            let mut at_stations = 0.0;
            for sp in &p.stations {
                assert!(sp.utilization <= 1.0 + 1e-9);
                assert!(sp.queue >= -1e-9);
                at_stations += sp.queue;
            }
            let thinking = p.throughput * net.think_time();
            assert!((at_stations + thinking - p.n as f64).abs() < 1e-5 * p.n as f64);
        }
    });
}

#[test]
fn mvasd_invariants_with_falling_demands() {
    check("mvasd_invariants_with_falling_demands", &cfg(), |g| {
        let base = g.f64_in(0.004, 0.05);
        let alpha = g.f64_in(0.0, 0.4);
        let servers = *g.choose(&[1usize, 4, 16]);
        let n_max = g.usize_in(10, 149);
        // Demand falls from base·(1+alpha) to base across the sampled range.
        let levels = vec![1.0, 50.0, 150.0];
        let d = |n: f64| base * (1.0 + alpha * (-(n - 1.0) / 60.0).exp());
        let samples = DemandSamples {
            station_names: vec!["s".into()],
            server_counts: vec![servers],
            think_time: 1.0,
            levels: levels.clone(),
            demands: vec![levels.iter().map(|&l| d(l)).collect()],
        };
        let profile = ServiceDemandProfile::from_samples(
            &samples,
            InterpolationKind::CubicNotAKnot,
            DemandAxis::Concurrency,
        )
        .unwrap();
        let sol = mvasd(&profile, n_max).unwrap();
        for p in &sol.points {
            // Little's law holds at every step even with varying demands.
            assert!((p.n as f64 - p.throughput * p.cycle_time).abs() < 1e-6 * p.n as f64);
            // Ceiling from the *minimum* demand over the curve (demand is
            // monotone falling, so min is the clamp value).
            let cap = servers as f64 / d(150.0);
            assert!(
                p.throughput <= cap + 1e-6 + 1e-6 * cap,
                "X {} cap {}",
                p.throughput,
                cap
            );
            assert!(p.stations[0].utilization <= 1.0 + 1e-9);
        }
    });
}

/// A random hierarchical topology: 0–2 root stations plus 2–4 subsystems
/// of 1–3 leaves each (multi-server queues, occasionally a delay leaf
/// alongside a queueing one).
fn gen_hierarchy(g: &mut Gen) -> HierarchicalNetwork {
    let mut nodes: Vec<NetworkNode> = Vec::new();
    for i in 0..g.usize_in(0, 2) {
        let c = *g.choose(&[1usize, 2, 4]);
        nodes.push(Station::queueing(&format!("root{i}"), c, 1.0, g.f64_in(0.001, 0.02)).into());
    }
    for s in 0..g.usize_in(2, 4) {
        let leaves = g.usize_in(1, 3);
        let mut children: Vec<NetworkNode> = (0..leaves)
            .map(|l| {
                let c = *g.choose(&[1usize, 2, 4, 8]);
                let d = g.f64_in(0.001, 0.05);
                NetworkNode::from(Station::queueing(&format!("t{s}-{l}"), c, 1.0, d))
            })
            .collect();
        if g.usize_in(0, 3) == 0 {
            children
                .push(Station::delay(&format!("t{s}-lan"), 1.0, g.f64_in(0.0005, 0.005)).into());
        }
        nodes.push(Subsystem::new(&format!("tier{s}"), children).into());
    }
    HierarchicalNetwork::new(nodes, g.f64_in(0.0, 2.0)).expect("generated parameters are valid")
}

#[test]
fn norton_aggregation_is_exact_for_random_topologies() {
    check(
        "norton_aggregation_is_exact_for_random_topologies",
        &cfg(),
        |g| {
            let net = gen_hierarchy(g);
            let n_max = g.usize_in(1, 60);
            let flat = MultiserverMvaSolver::new(net.flatten())
                .solve(n_max)
                .unwrap();
            let hier = HierarchicalSolver::new(net).solve(n_max).unwrap();
            assert_eq!(&flat.station_names[..], &hier.station_names[..]);
            // Norton flow-equivalent aggregation is exact for product-form
            // networks: every shared population must agree to 1e-9.
            for (pf, ph) in flat.points.iter().zip(hier.points.iter()) {
                let rx = (pf.throughput - ph.throughput).abs() / pf.throughput.abs().max(1e-300);
                assert!(rx <= 1e-9, "n={}: X rel err {rx}", pf.n);
                let rc = (pf.cycle_time - ph.cycle_time).abs() / pf.cycle_time.abs().max(1e-300);
                assert!(rc <= 1e-9, "n={}: cycle rel err {rc}", pf.n);
                for (k, (sf, sh)) in pf.stations.iter().zip(ph.stations.iter()).enumerate() {
                    assert!(
                        (sf.queue - sh.queue).abs() <= 1e-6 * sf.queue.abs().max(1.0),
                        "n={} station {k}: queue {} vs {}",
                        pf.n,
                        sf.queue,
                        sh.queue
                    );
                    assert!(
                        (sf.utilization - sh.utilization).abs() <= 1e-6,
                        "n={} station {k}: util {} vs {}",
                        pf.n,
                        sf.utilization,
                        sh.utilization
                    );
                }
            }
        },
    );
}

#[test]
fn one_class_workload_reproduces_exact_mva_bitwise() {
    // A 1-class Workload is *literally* the single-class model: every
    // streamed step of the multiclass recursion must reproduce Algorithm 1
    // (single-server exact MVA, delay stations pass through) bit for bit —
    // not merely to tolerance. Single-server queueing stations have a
    // trivial Seidmann split (dq = D, dd = 0) and delay stations never
    // enter the arrival-theorem queue, so the arithmetic sequences are
    // identical by construction; this pins that contract.
    check(
        "one_class_workload_reproduces_exact_mva_bitwise",
        &cfg(),
        |g| {
            let count = g.usize_in(1, 5);
            let mut stations = Vec::new();
            let mut kinds = Vec::new();
            let mut demands = Vec::new();
            for i in 0..count {
                let d = g.f64_in(0.001, 0.1);
                if g.usize_in(0, 3) == 0 {
                    stations.push(Station::delay(&format!("s{i}"), 1.0, d));
                    kinds.push(StationKind::Delay);
                } else {
                    stations.push(Station::queueing(&format!("s{i}"), 1, 1.0, d));
                    kinds.push(StationKind::Queueing { servers: 1 });
                }
                demands.push(d);
            }
            let z = g.f64_in(0.0, 2.0);
            let n_max = g.usize_in(1, 60);
            let names: Vec<String> = (0..count).map(|i| format!("s{i}")).collect();
            let net = ClosedNetwork::new(stations, z).expect("generated parameters are valid");
            let workload = Workload::new(
                names,
                kinds,
                vec![ClassSpec {
                    name: "only".into(),
                    population: n_max,
                    think_time: z,
                    demands,
                }],
            )
            .expect("generated parameters are valid");
            let mut exact = ExactMvaIter::new(net);
            let mut mc = MulticlassIter::new(&workload).unwrap();
            for _ in 0..n_max {
                let a = exact.step().unwrap();
                let b = mc.step().unwrap();
                assert_eq!(a.n, b.n);
                assert_eq!(
                    a.throughput.to_bits(),
                    b.throughput.to_bits(),
                    "X at n={}: {} vs {}",
                    a.n,
                    a.throughput,
                    b.throughput
                );
                assert_eq!(a.response.to_bits(), b.response.to_bits(), "R at n={}", a.n);
                assert_eq!(
                    a.cycle_time.to_bits(),
                    b.cycle_time.to_bits(),
                    "cycle at n={}",
                    a.n
                );
                for (k, (sa, sb)) in a.stations.iter().zip(&b.stations).enumerate() {
                    assert_eq!(
                        sa.queue.to_bits(),
                        sb.queue.to_bits(),
                        "queue at n={} station {k}: {} vs {}",
                        a.n,
                        sa.queue,
                        sb.queue
                    );
                    assert_eq!(
                        sa.residence.to_bits(),
                        sb.residence.to_bits(),
                        "residence at n={} station {k}",
                        a.n
                    );
                    assert_eq!(
                        sa.utilization.to_bits(),
                        sb.utilization.to_bits(),
                        "utilization at n={} station {k}",
                        a.n
                    );
                }
            }
        },
    );
}

#[test]
fn cubic_spline_interpolates_and_clamps() {
    check("cubic_spline_interpolates_and_clamps", &cfg(), |g| {
        let count = g.usize_in(3, 9);
        let mut pts: Vec<(f64, f64)> = (0..count)
            .map(|_| (g.f64_in(0.0, 1000.0), g.f64_in(0.001, 1.0)))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1.0);
        if pts.len() < 3 {
            return; // discard: dedup collapsed too many knots
        }
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let s = CubicSpline::new(&xs, &ys, BoundaryCondition::NotAKnot)
            .unwrap()
            .with_extrapolation(Extrapolation::Clamp);
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-6 * y.abs().max(1.0));
        }
        // eq. 14 clamping.
        assert_eq!(s.eval(xs[0] - 100.0), ys[0]);
        assert_eq!(s.eval(xs[xs.len() - 1] + 100.0), ys[ys.len() - 1]);
    });
}

#[test]
fn pchip_preserves_monotonicity() {
    check("pchip_preserves_monotonicity", &cfg(), |g| {
        let mut ys = g.vec_f64(4, 11, 0.001, 1.0);
        ys.sort_by(|a, b| b.partial_cmp(a).unwrap()); // decreasing
        let xs: Vec<f64> = (0..ys.len()).map(|i| 1.0 + 10.0 * i as f64).collect();
        let p = PchipInterp::new(&xs, &ys).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..=300 {
            let x = 1.0 + (xs.len() as f64 - 1.0) * 10.0 * i as f64 / 300.0;
            let v = p.eval(x);
            assert!(v <= prev + 1e-9);
            prev = v;
        }
    });
}

#[test]
fn chebyshev_levels_sorted_in_range() {
    check("chebyshev_levels_sorted_in_range", &cfg(), |g| {
        let k = g.usize_in(1, 11);
        let a = g.f64_in(1.0, 50.0);
        let b = a + g.f64_in(10.0, 500.0);
        let levels = chebyshev_levels(k, a, b);
        assert!(!levels.is_empty());
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        for &l in &levels {
            assert!(l as f64 >= a.floor());
            assert!(l as f64 <= b.ceil());
        }
    });
}
